/**
 * @file
 * Pluggable overload scheduling for the online serving layer.
 *
 * BENCH_serving_online.json exposed the 2x-saturation pathology: with
 * an unbounded queue every policy degenerates to wait-to-fill, SLO
 * attainment collapses to 0%, and p99 grows with the backlog. Fixing
 * that is not one patch but a policy space — admission control, shed
 * rules, batching, lane ordering — so the tick loops in online.cc are
 * refactored around the SchedulerPolicy interface below. A scheduler
 * is now a one-file addition: derive from SchedulerPolicy, register a
 * factory under a name, select it via OnlineConfig::policy (or inject
 * a factory directly through OnlineConfig::makePolicy).
 *
 * One policy instance drives all three serving modes through the same
 * four decision points:
 *
 *  - admit():     accept or shed an arrival (bounded queue /
 *                 deadline-infeasible drop, per the lane's ShedMode);
 *  - pickLane():  which lane (tenant variant, home shard, or the one
 *                 single-mode queue) gets the next micro-batch;
 *  - pickBatch(): how many queued requests that batch coalesces;
 *  - observe():   feed the served batch's modeled cost back into the
 *                 per-lane AdaptiveBatcher EWMAs.
 *
 * Built-in policies, all bit-deterministic:
 *
 *  - "fixed"     wait-to-fill fixedBatch (the PR 2 baseline);
 *  - "adaptive"  EDF lane interleave + deadline-budget adaptive
 *                batching (the PR 2/PR 5 default) — re-expressed on
 *                this interface with bit-identical reports;
 *  - "wfq"       priority tiers, then weighted-fair sharing within a
 *                tier (served-count normalized by ServingConfig::
 *                tenantWeight), EDF as the tie-break.
 */

#ifndef HECTOR_SERVE_SCHEDULER_POLICY_HH
#define HECTOR_SERVE_SCHEDULER_POLICY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "serve/engine.hh"

namespace hector::serve
{

/**
 * Per-tick micro-batch sizing from queue depth + cost EWMAs.
 *
 * Policy: below saturation, serve everything queued immediately,
 * except when the EWMA cost model predicts the batch's own service
 * time would eat more than `budgetFraction` of the deadline — then
 * the batch is capped so queued requests keep their SLO headroom.
 * At saturation (queue at or above maxBatch) the behavior depends on
 * whether admission control bounds the queue: unbounded, the backlog
 * has already blown every deadline and maxBatch is the
 * throughput-optimal choice; bounded (bounded_queue = true), queueing
 * delay stays finite, admitted requests are still servable within
 * SLO, and the deadline-budget cap stays active.
 */
class AdaptiveBatcher
{
  public:
    /**
     * @param max_batch       upper bound on the micro-batch size
     * @param deadline_sec    per-request SLO (0 disables the cap)
     * @param alpha           EWMA smoothing factor in (0, 1]
     * @param budget_fraction fraction of the deadline a single batch's
     *                        service time may consume
     * @param bounded_queue   admission control bounds the queue: keep
     *                        the deadline cap active at saturation
     */
    AdaptiveBatcher(std::size_t max_batch, double deadline_sec,
                    double alpha = 0.25, double budget_fraction = 0.5,
                    bool bounded_queue = false);

    /** Batch size for a tick that sees @p queue_depth queued requests. */
    std::size_t pick(std::size_t queue_depth) const;

    /** Feed one served batch's modeled cost into the EWMAs. */
    void observe(const BatchCost &cost);

    bool calibrated() const { return observed_; }
    double ewmaOverheadSec() const { return ewmaOverheadSec_; }
    double ewmaExecPerRequestSec() const { return ewmaExecPerReqSec_; }
    std::size_t maxBatch() const { return maxBatch_; }
    bool boundedQueue() const { return boundedQueue_; }

  private:
    std::size_t maxBatch_;
    double deadlineSec_;
    double alpha_;
    double budgetFraction_;
    bool boundedQueue_;
    double ewmaOverheadSec_ = 0.0;
    double ewmaExecPerReqSec_ = 0.0;
    bool observed_ = false;
};

/**
 * Static description of one lane a policy schedules over: a tenant
 * variant (multi-tenant mode), a home shard (sharded mode), or the one
 * queue of single-session mode. Built by OnlineServer from the lane's
 * ServingConfig + OnlineConfig.
 */
struct LaneSpec
{
    std::string name;
    std::size_t maxBatch = 8;
    /** Per-request SLO; 0 = none. */
    double deadlineSec = 0.0;
    /** Wait-to-fill target of the "fixed" policy (<= maxBatch). */
    std::size_t fixedBatch = 8;
    /** Weighted-fair share ("wfq"); > 0. */
    double weight = 1.0;
    /** Priority tier ("wfq"); lower tiers are served strictly first. */
    int tier = 0;
    /** Admission bound on the lane's queue; 0 = unbounded. */
    std::size_t maxQueueDepth = 0;
    ShedMode shed = ShedMode::None;
    /** AdaptiveBatcher EWMA smoothing factor. */
    double ewmaAlpha = 0.25;
    /** AdaptiveBatcher deadline budget fraction. */
    double budgetFraction = 0.5;
};

/** Dynamic state of one lane at a decision point. */
struct LaneView
{
    std::size_t queueDepth = 0;
    /** Oldest queued arrival time; meaningful when queueDepth > 0. */
    double headArrivalSec = 0.0;
    /** The lane's arrival process has arrivals left. */
    bool moreArrivals = true;
    /** The resilience layer blocks this lane (open circuit breaker or
     *  backoff-held head); built-in policies skip blocked lanes. */
    bool blocked = false;
};

/** Outcome of one admission decision. */
struct AdmitDecision
{
    bool admit = true;
    /** Stable shed-reason tag recorded in the flight recorder and
     *  trace ("queue-full", "deadline-infeasible"); "" on admit. */
    const char *reason = "";
};

/** Everything a policy factory receives at construction. */
struct PolicySetup
{
    std::vector<LaneSpec> lanes;
    /**
     * When set, every lane shares this externally owned cost model
     * instead of per-lane owned batchers. The single and sharded
     * modes pass the server's batcher here: sharded devices have
     * always shared one EWMA state (the batcher() accessor reports
     * it), and the refactor keeps those timelines bit-identical.
     */
    AdaptiveBatcher *sharedBatcher = nullptr;
};

/**
 * The scheduling policy interface the online tick loops delegate to.
 * Implementations must be deterministic: same construction + same
 * call sequence => same decisions, at any host thread count.
 */
class SchedulerPolicy
{
  public:
    explicit SchedulerPolicy(PolicySetup setup);
    virtual ~SchedulerPolicy() = default;

    /** Registry name of the policy (reported in OnlineReport). */
    virtual const char *name() const = 0;

    /**
     * Admission decision for an arrival on @p lane at @p arrival_sec,
     * seen when the host clock stands at @p now_sec. The default
     * implements the lane's ShedMode: reject-newest once the queue is
     * at maxQueueDepth, and (DeadlineInfeasible) drop arrivals whose
     * deadline the cost model already predicts unmeetable behind the
     * current backlog.
     */
    virtual AdmitDecision admit(std::size_t lane, const LaneView &view,
                                double arrival_sec, double now_sec) const;

    /**
     * Lane to serve this tick (index into @p lanes), or -1 to wait
     * for more arrivals. Lanes with queueDepth == 0 must not be
     * returned.
     */
    virtual int pickLane(const std::vector<LaneView> &lanes) const = 0;

    /** Micro-batch size for the picked lane; the tick loop clamps the
     *  result to [1, queueDepth]. */
    virtual std::size_t pickBatch(std::size_t lane,
                                  const LaneView &view) const = 0;

    /** One served batch's modeled cost, fed back per lane. The base
     *  implementation updates the lane's AdaptiveBatcher EWMAs. */
    virtual void observe(std::size_t lane, const BatchCost &cost);

    /**
     * Modeled seconds to serve @p n queued requests of @p lane
     * (launch overheads + execution), or 0 before the cost model is
     * calibrated. Drives the DeadlineInfeasible admission check.
     */
    virtual double estimateServiceSec(std::size_t lane,
                                      std::size_t n) const;

    std::size_t numLanes() const { return lanes_.size(); }
    const LaneSpec &lane(std::size_t i) const { return lanes_.at(i); }
    const AdaptiveBatcher &batcher(std::size_t i) const
    {
        return batcherFor(i);
    }

  protected:
    AdaptiveBatcher &batcherFor(std::size_t lane);
    const AdaptiveBatcher &batcherFor(std::size_t lane) const;

    /**
     * EDF ordering key of a lane's head-of-line request: absolute
     * deadline when the lane has one, +inf otherwise (no-deadline
     * lanes rank behind every deadline lane and compete on arrival
     * order).
     */
    static double edfKey(const LaneSpec &spec, const LaneView &view);

    std::vector<LaneSpec> lanes_;

  private:
    AdaptiveBatcher *shared_;
    std::vector<AdaptiveBatcher> owned_;
};

/** Factory signature of a registered policy. */
using PolicyFactory =
    std::function<std::unique_ptr<SchedulerPolicy>(const PolicySetup &)>;

/**
 * Register @p factory under @p name (overwrites an existing entry;
 * returns true when the name was new). Built-ins "fixed", "adaptive"
 * and "wfq" are pre-registered.
 */
bool registerSchedulerPolicy(const std::string &name,
                             PolicyFactory factory);

/** True when @p name resolves to a registered policy. */
bool schedulerPolicyRegistered(const std::string &name);

/** Construct the policy registered under @p name; throws
 *  std::invalid_argument (naming the policy) on an unknown name. */
std::unique_ptr<SchedulerPolicy>
makeSchedulerPolicy(const std::string &name, PolicySetup setup);

/** Registered policy names, sorted. */
std::vector<std::string> schedulerPolicyNames();

} // namespace hector::serve

#endif // HECTOR_SERVE_SCHEDULER_POLICY_HH
