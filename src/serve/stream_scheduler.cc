#include "serve/stream_scheduler.hh"

#include <algorithm>
#include <stdexcept>

namespace hector::serve
{

StreamRunCost
runOnStream(sim::Runtime &rt, int stream, const std::function<void()> &work)
{
    rt.setCurrentStream(stream);
    const sim::StreamStats before =
        rt.streamStats()[static_cast<std::size_t>(stream)];
    const double host_before = rt.hostTimeMs() * 1e-3;

    work();

    const sim::StreamStats &after =
        rt.streamStats()[static_cast<std::size_t>(stream)];
    StreamRunCost cost;
    cost.execSec = after.execSec - before.execSec;
    cost.overheadSec = (after.overheadSec - before.overheadSec) +
                       (rt.hostTimeMs() * 1e-3 - host_before);

    // Leave the runtime on the default stream so launches outside the
    // measured run are not attributed to whatever stream ran last.
    rt.setCurrentStream(0);
    return cost;
}

StreamScheduler::StreamScheduler(sim::Runtime &rt, int num_streams)
    : rt_(rt), numStreams_(num_streams)
{
    if (num_streams < 1)
        throw std::runtime_error("StreamScheduler: need >= 1 stream");
    streamBusySec_.assign(static_cast<std::size_t>(num_streams), 0.0);
}

ScheduledBatch
StreamScheduler::run(const std::function<void()> &work)
{
    // Least-loaded (earliest-free) stream.
    int s = 0;
    for (int i = 1; i < numStreams_; ++i)
        if (streamBusySec_[static_cast<std::size_t>(i)] <
            streamBusySec_[static_cast<std::size_t>(s)])
            s = i;

    const StreamRunCost cost = runOnStream(rt_, s, work);
    ScheduledBatch b;
    b.stream = s;
    b.execSec = cost.execSec;
    b.overheadSec = cost.overheadSec;

    // Timeline: the host issues launches serially; the batch's kernels
    // then run once the stream is free.
    hostClockSec_ += b.overheadSec;
    const double start =
        std::max(hostClockSec_, streamBusySec_[static_cast<std::size_t>(s)]);
    b.completionSec = start + b.execSec;
    streamBusySec_[static_cast<std::size_t>(s)] = b.completionSec;

    batches_.push_back(b);
    return b;
}

double
StreamScheduler::makespanSec() const
{
    std::vector<double> exec_per_stream(
        static_cast<std::size_t>(numStreams_), 0.0);
    double exec_total = 0.0;
    for (const ScheduledBatch &b : batches_) {
        exec_per_stream[static_cast<std::size_t>(b.stream)] += b.execSec;
        exec_total += b.execSec;
    }
    const double busiest = exec_per_stream.empty()
                               ? 0.0
                               : *std::max_element(exec_per_stream.begin(),
                                                   exec_per_stream.end());
    return sim::overlapMakespanSec(hostClockSec_, busiest, exec_total,
                                   rt_.spec().streamSerialFraction);
}

std::vector<double>
StreamScheduler::completionTimes() const
{
    std::vector<double> times;
    times.reserve(batches_.size());
    double max_raw = 0.0;
    for (const ScheduledBatch &b : batches_) {
        times.push_back(b.completionSec);
        max_raw = std::max(max_raw, b.completionSec);
    }
    // All-empty batches (no kernels, no host work) leave both the raw
    // completions and the makespan at 0; the uniform stretch would be
    // 0/0, so it only applies when there is a real timeline to
    // distribute the contention penalty over.
    const double makespan = makespanSec();
    if (max_raw > 0.0 && makespan > 0.0) {
        const double stretch = makespan / max_raw;
        for (double &t : times)
            t *= stretch;
    }
    return times;
}

} // namespace hector::serve
