#include "serve/stream_scheduler.hh"

#include <algorithm>
#include <stdexcept>

namespace hector::serve
{

StreamScheduler::StreamScheduler(sim::Runtime &rt, int num_streams)
    : rt_(rt), numStreams_(num_streams)
{
    if (num_streams < 1)
        throw std::runtime_error("StreamScheduler: need >= 1 stream");
    streamBusySec_.assign(static_cast<std::size_t>(num_streams), 0.0);
}

ScheduledBatch
StreamScheduler::run(const std::function<void()> &work)
{
    // Least-loaded (earliest-free) stream.
    int s = 0;
    for (int i = 1; i < numStreams_; ++i)
        if (streamBusySec_[static_cast<std::size_t>(i)] <
            streamBusySec_[static_cast<std::size_t>(s)])
            s = i;

    rt_.setCurrentStream(s);
    const sim::StreamStats before =
        rt_.streamStats()[static_cast<std::size_t>(s)];
    const double host_before = rt_.hostTimeMs() * 1e-3;

    work();

    const sim::StreamStats &after =
        rt_.streamStats()[static_cast<std::size_t>(s)];
    ScheduledBatch b;
    b.stream = s;
    b.execSec = after.execSec - before.execSec;
    b.overheadSec = (after.overheadSec - before.overheadSec) +
                    (rt_.hostTimeMs() * 1e-3 - host_before);

    // Timeline: the host issues launches serially; the batch's kernels
    // then run once the stream is free.
    hostClockSec_ += b.overheadSec;
    const double start =
        std::max(hostClockSec_, streamBusySec_[static_cast<std::size_t>(s)]);
    b.completionSec = start + b.execSec;
    streamBusySec_[static_cast<std::size_t>(s)] = b.completionSec;

    // Leave the runtime on the default stream so launches outside the
    // scheduler are not attributed to whatever stream ran last.
    rt_.setCurrentStream(0);

    batches_.push_back(b);
    return b;
}

double
StreamScheduler::makespanSec() const
{
    std::vector<double> exec_per_stream(
        static_cast<std::size_t>(numStreams_), 0.0);
    double exec_total = 0.0;
    for (const ScheduledBatch &b : batches_) {
        exec_per_stream[static_cast<std::size_t>(b.stream)] += b.execSec;
        exec_total += b.execSec;
    }
    const double busiest = exec_per_stream.empty()
                               ? 0.0
                               : *std::max_element(exec_per_stream.begin(),
                                                   exec_per_stream.end());
    return sim::overlapMakespanSec(hostClockSec_, busiest, exec_total,
                                   rt_.spec().streamSerialFraction);
}

std::vector<double>
StreamScheduler::completionTimes() const
{
    std::vector<double> times;
    times.reserve(batches_.size());
    double max_raw = 0.0;
    for (const ScheduledBatch &b : batches_) {
        times.push_back(b.completionSec);
        max_raw = std::max(max_raw, b.completionSec);
    }
    // All-empty batches (no kernels, no host work) leave both the raw
    // completions and the makespan at 0; the uniform stretch would be
    // 0/0, so it only applies when there is a real timeline to
    // distribute the contention penalty over.
    const double makespan = makespanSec();
    if (max_raw > 0.0 && makespan > 0.0) {
        const double stretch = makespan / max_raw;
        for (double &t : times)
            t *= stretch;
    }
    return times;
}

} // namespace hector::serve
