#include "serve/engine.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/autotune.hh"
#include "core/frontend.hh"
#include "core/jit.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"

namespace hector::serve
{

using tensor::Tensor;

namespace
{

/**
 * Deterministic dual-issue sampling: error diffusion over the
 * duplication fraction, no RNG, so of the first k primary batches
 * exactly round(k * fraction) duplicate — and a fault run replays
 * identically at any thread count.
 */
bool
sampleDuplicate(double fraction, double &acc)
{
    if (fraction <= 0.0)
        return false;
    acc += fraction;
    if (acc >= 1.0 - 1e-12) {
        acc -= 1.0;
        return true;
    }
    return false;
}

} // namespace

// ------------------------------------------------------------------ helpers

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const std::size_t idx =
        rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

void
fillLatencyStats(ServingReport &report,
                 const std::vector<double> &latencies_sec,
                 const std::vector<double> &queue_delays_sec,
                 double deadline_ms)
{
    std::vector<double> sorted = latencies_sec;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double l : latencies_sec)
        sum += l;
    report.meanLatencyMs =
        latencies_sec.empty()
            ? 0.0
            : sum / static_cast<double>(latencies_sec.size()) * 1e3;
    report.p50LatencyMs = percentileSorted(sorted, 0.50) * 1e3;
    report.p95LatencyMs = percentileSorted(sorted, 0.95) * 1e3;
    report.p99LatencyMs = percentileSorted(sorted, 0.99) * 1e3;
    report.p999LatencyMs = percentileSorted(sorted, 0.999) * 1e3;
    report.maxLatencyMs = sorted.empty() ? 0.0 : sorted.back() * 1e3;

    double delay_sum = 0.0;
    for (double d : queue_delays_sec)
        delay_sum += d;
    report.meanQueueDelayMs =
        queue_delays_sec.empty()
            ? 0.0
            : delay_sum / static_cast<double>(queue_delays_sec.size()) *
                  1e3;

    if (deadline_ms > 0.0 && !latencies_sec.empty()) {
        std::size_t met = 0;
        for (double l : latencies_sec)
            if (l * 1e3 <= deadline_ms)
                ++met;
        report.sloAttainment =
            static_cast<double>(met) /
            static_cast<double>(latencies_sec.size());
    }
}

void
fillCacheStats(ServingReport &report, const PlanCache::Stats &stats)
{
    report.cacheHits = stats.hits;
    report.cacheMisses = stats.misses;
    report.cacheRecompiles = stats.recompiles;
    report.cacheEvictions = stats.evictions;
    report.cacheResidentBytes = stats.residentBytes;
}

VariantReport
makeVariantReport(const std::string &name,
                  std::vector<double> &latencies_sec, double deadline_ms)
{
    VariantReport vr;
    vr.name = name;
    vr.requests = latencies_sec.size();
    if (latencies_sec.empty())
        return vr;
    double sum = 0.0;
    std::size_t met = 0;
    for (double l : latencies_sec) {
        sum += l;
        if (deadline_ms <= 0.0 || l * 1e3 <= deadline_ms)
            ++met;
    }
    vr.meanLatencyMs =
        sum / static_cast<double>(latencies_sec.size()) * 1e3;
    std::sort(latencies_sec.begin(), latencies_sec.end());
    vr.p50LatencyMs = percentileSorted(latencies_sec, 0.50) * 1e3;
    vr.p99LatencyMs = percentileSorted(latencies_sec, 0.99) * 1e3;
    vr.sloAttainment =
        deadline_ms > 0.0
            ? static_cast<double>(met) /
                  static_cast<double>(latencies_sec.size())
            : 1.0;
    return vr;
}

void
recordPlanEvents(sim::PlanEvents &events, const PlanCache::Stats &before,
                 const PlanCache::Stats &after)
{
    events.compiles += after.misses - before.misses;
    events.recompiles += after.recompiles - before.recompiles;
    events.evictions += after.evictions - before.evictions;
}

void
validateServingConfig(const ServingConfig &cfg, const char *who)
{
    const std::string prefix = std::string(who) + ": ";
    if (cfg.maxBatch == 0)
        throw std::invalid_argument(prefix + "maxBatch must be > 0");
    if (cfg.numStreams <= 0)
        throw std::invalid_argument(prefix + "numStreams must be > 0");
    if (cfg.deadlineMs < 0.0 || !std::isfinite(cfg.deadlineMs))
        throw std::invalid_argument(
            prefix + "deadlineMs must be finite and >= 0");
    if (cfg.din <= 0)
        throw std::invalid_argument(prefix + "din must be > 0");
    if (cfg.dout <= 0)
        throw std::invalid_argument(prefix + "dout must be > 0");
    if (!(cfg.duplicationFraction >= 0.0 &&
          cfg.duplicationFraction <= 1.0))
        throw std::invalid_argument(
            prefix + "duplicationFraction must be in [0, 1]");
    if (cfg.shed != ShedMode::None && cfg.maxQueueDepth == 0)
        throw std::invalid_argument(
            prefix +
            "maxQueueDepth must be > 0 when shedding is enabled");
    if (!(cfg.tenantWeight > 0.0) || !std::isfinite(cfg.tenantWeight))
        throw std::invalid_argument(
            prefix + "tenantWeight must be finite and > 0");
    if (cfg.tenantTier < 0)
        throw std::invalid_argument(prefix + "tenantTier must be >= 0");
    if (cfg.mmpp.enabled) {
        if (!(cfg.mmpp.burstRateMultiplier > 0.0) ||
            !std::isfinite(cfg.mmpp.burstRateMultiplier))
            throw std::invalid_argument(
                prefix +
                "mmpp.burstRateMultiplier must be finite and > 0");
        if (!(cfg.mmpp.pEnterBurst >= 0.0 &&
              cfg.mmpp.pEnterBurst <= 1.0))
            throw std::invalid_argument(
                prefix + "mmpp.pEnterBurst must be in [0, 1]");
        if (!(cfg.mmpp.pExitBurst >= 0.0 && cfg.mmpp.pExitBurst <= 1.0))
            throw std::invalid_argument(
                prefix + "mmpp.pExitBurst must be in [0, 1]");
    }
    if (cfg.diurnal.enabled) {
        if (!(cfg.diurnal.amplitude >= 0.0 &&
              cfg.diurnal.amplitude < 1.0))
            throw std::invalid_argument(
                prefix + "diurnal.amplitude must be in [0, 1)");
        if (!(cfg.diurnal.periodSec > 0.0) ||
            !std::isfinite(cfg.diurnal.periodSec))
            throw std::invalid_argument(
                prefix + "diurnal.periodSec must be finite and > 0");
    }
    if (cfg.resilience.enabled) {
        const ResilienceConfig &r = cfg.resilience;
        if (r.maxRetries < 0)
            throw std::invalid_argument(
                prefix + "resilience.maxRetries must be >= 0");
        if (r.retryBackoffMs < 0.0 || !std::isfinite(r.retryBackoffMs))
            throw std::invalid_argument(
                prefix +
                "resilience.retryBackoffMs must be finite and >= 0");
        if (!(r.retryBackoffMultiplier >= 1.0) ||
            !std::isfinite(r.retryBackoffMultiplier))
            throw std::invalid_argument(
                prefix +
                "resilience.retryBackoffMultiplier must be >= 1");
        if (r.retryBackoffCapMs < r.retryBackoffMs ||
            !std::isfinite(r.retryBackoffCapMs))
            throw std::invalid_argument(
                prefix + "resilience.retryBackoffCapMs must be >= "
                         "retryBackoffMs");
        if (!(r.retryJitterFraction >= 0.0 &&
              r.retryJitterFraction <= 1.0))
            throw std::invalid_argument(
                prefix +
                "resilience.retryJitterFraction must be in [0, 1]");
        if (r.hedge &&
            (!(r.hedgeDelayFactor > 0.0) ||
             !std::isfinite(r.hedgeDelayFactor)))
            throw std::invalid_argument(
                prefix + "resilience.hedgeDelayFactor must be > 0 "
                         "when hedging is enabled");
        if (r.breakerFailureThreshold < 1)
            throw std::invalid_argument(
                prefix +
                "resilience.breakerFailureThreshold must be >= 1");
        if (r.breakerOpenMs < 0.0 || !std::isfinite(r.breakerOpenMs))
            throw std::invalid_argument(
                prefix +
                "resilience.breakerOpenMs must be finite and >= 0");
        if (!(r.brownoutHighWatermark > 0.0 &&
              r.brownoutHighWatermark <= 1.0))
            throw std::invalid_argument(
                prefix +
                "resilience.brownoutHighWatermark must be in (0, 1]");
        if (!(r.brownoutLowWatermark >= 0.0 &&
              r.brownoutLowWatermark < r.brownoutHighWatermark))
            throw std::invalid_argument(
                prefix + "resilience.brownoutLowWatermark must be in "
                         "[0, brownoutHighWatermark)");
    }
}

models::WeightMap
initVariantWeights(const std::string &model_source, std::int64_t din,
                   std::int64_t dout, const graph::HeteroGraph &g,
                   std::mt19937_64 &rng)
{
    core::Program pristine = core::parseModel(model_source, din, dout);
    return models::initWeights(pristine, g, rng);
}

// ------------------------------------------------------------- PlanCompiler

PlanCompiler::PlanCompiler(const graph::HeteroGraph &g, std::string label,
                           ServingConfig cfg, bool autotune_schedules)
    : g_(&g), label_(std::move(label)), cfg_(std::move(cfg)),
      autotune_(autotune_schedules)
{}

PlanCache::Compiled
PlanCompiler::compile(const PlanKey &key, const Tensor &host_features,
                      const models::WeightMap &weights)
{
    core::Program program =
        core::parseModel(key.modelSource, key.din, key.dout);

    if (autotune_ && !tuned_) {
        // Representative workload: a neighborhood sampled on a
        // DEDICATED rng, so tuning never perturbs the variant's
        // request stream (dedicated-session bit-equality depends on
        // that). Trials run on their own throwaway runtimes; nothing
        // is charged to the serving device.
        std::mt19937_64 trng(cfg_.seed ^ 0x7a11e5ull);
        graph::Minibatch mb =
            graph::sampleNeighbors(*g_, cfg_.sample, trng);
        Tensor feature;
        {
            tensor::TrackerScope untracked(nullptr);
            feature = graph::gatherFeatures(mb, host_features);
        }
        auto make_weights = [&weights]() { return weights; };
        const core::AutotuneSpace defaults;
        const core::AutotuneReport report = core::autotuneSchedules(
            program, mb.subgraph, make_weights, feature, key.options,
            defaults.schedules, sim::DeviceSpec{});
        tunedSched_ = report.best().options.sched;
        // Shape bucket: representative union size rounded up to a
        // power of two — the same traffic shape re-tunes to the same
        // key, and the key survives evictions.
        std::int64_t bucket = 1;
        while (bucket < mb.subgraph.numNodes())
            bucket <<= 1;
        scheduleKey_ = label_ + "/n" + std::to_string(bucket) + "/" +
                       core::scheduleLabel(tunedSched_);
        tuned_ = true;
    }

    core::CompileOptions effective = key.options;
    if (tuned_)
        effective.sched = tunedSched_;

    PlanCache::Compiled out;
    auto plan = std::make_shared<core::CompiledModel>(
        core::compile(std::move(program), effective));
    // Per-(variant, shape-bucket) specialization: the JIT compiles the
    // plan's generated C++ kernels (or counts a fallback) before the
    // plan enters the cache behind pointer-to-const.
    core::jit::attach(*plan);
    out.plan = std::move(plan);
    out.scheduleKey = scheduleKey_;

    // Modeled resident cost: generated plan text + arena slots sized
    // for a nominal maximal micro-batch + this variant's weights,
    // plus the dlopened JIT artifact when one is attached.
    std::size_t bytes = out.plan->code.cudaSource.size() +
                        out.plan->code.hostSource.size() +
                        out.plan->code.pythonSource.size() +
                        out.plan->code.cpuSource.size() +
                        (out.plan->jit ? out.plan->jit->artifactBytes()
                                       : 0);
    const std::int64_t per_req_nodes =
        cfg_.sample.numSeeds * (1 + cfg_.sample.fanout);
    const std::int64_t nodes = std::min(
        g_->numNodes(),
        static_cast<std::int64_t>(cfg_.maxBatch) * per_req_nodes);
    const std::int64_t edges = std::min(
        g_->numEdges(),
        static_cast<std::int64_t>(cfg_.maxBatch) * cfg_.sample.numSeeds *
            cfg_.sample.fanout *
            std::max(1, g_->numEdgeTypes()));
    for (const core::MemoryPlan::Slot &slot : out.plan->memoryPlan.slots) {
        const std::int64_t rows =
            slot.rows == core::SlotRows::Nodes ? nodes : edges;
        bytes += static_cast<std::size_t>(rows) *
                 static_cast<std::size_t>(slot.cols) * sizeof(float);
    }
    for (const auto &[name, w] : weights)
        bytes += w.bytes();
    out.costBytes = bytes;
    return out;
}

// ------------------------------------------------------------------- Engine

Engine::Variant::Variant(const graph::HeteroGraph &g, std::string name_,
                         Tensor features, std::string source,
                         ServingConfig cfg_, bool autotune)
    : name(std::move(name_)), hostFeatures(std::move(features)),
      modelSource(std::move(source)), cfg(cfg_), rng(cfg_.seed),
      compiler(g, name, cfg_, autotune)
{
    // Weights first, then the request-sampling stream continues on the
    // same generator — the seeding order every serving session shares.
    weights = initVariantWeights(modelSource, cfg.din, cfg.dout, g, rng);
}

Engine::Engine(const graph::HeteroGraph &g, EngineConfig cfg,
               sim::Runtime &rt)
    : g_(g), cfg_(cfg), rt_(rt), cache_(cfg.planBudgetBytes)
{
    if (cfg_.numStreams <= 0)
        throw std::invalid_argument("Engine: numStreams must be > 0");
}

int
Engine::registerVariant(const std::string &name, Tensor host_features,
                        std::string model_source, ServingConfig cfg)
{
    validateServingConfig(cfg, "Engine::registerVariant");
    if (variantIndex(name) >= 0)
        throw std::invalid_argument(
            "Engine::registerVariant: duplicate variant name '" + name +
            "'");
    if (host_features.ndim() != 2 || host_features.dim(1) != cfg.din)
        throw std::invalid_argument(
            "Engine::registerVariant: host feature dim != config din");
    variants_.emplace_back(g_, name, std::move(host_features),
                           std::move(model_source), cfg,
                           cfg_.autotuneSchedules || cfg.autotuneSchedules);
    return static_cast<int>(variants_.size()) - 1;
}

int
Engine::variantIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < variants_.size(); ++i)
        if (variants_[i].name == name)
            return static_cast<int>(i);
    return -1;
}

Engine::Variant &
Engine::at(int v)
{
    if (v < 0 || static_cast<std::size_t>(v) >= variants_.size())
        throw std::runtime_error("Engine: variant id out of range");
    return variants_[static_cast<std::size_t>(v)];
}

const Engine::Variant &
Engine::at(int v) const
{
    if (v < 0 || static_cast<std::size_t>(v) >= variants_.size())
        throw std::runtime_error("Engine: variant id out of range");
    return variants_[static_cast<std::size_t>(v)];
}

const std::string &
Engine::variantName(int v) const
{
    return at(v).name;
}

const ServingConfig &
Engine::variantConfig(int v) const
{
    return at(v).cfg;
}

models::WeightMap &
Engine::weights(int v)
{
    return at(v).weights;
}

const std::string &
Engine::scheduleKey(int v) const
{
    return at(v).compiler.scheduleKey();
}

std::size_t
Engine::queued() const
{
    std::size_t n = 0;
    for (const Variant &v : variants_)
        n += v.queue.size();
    return n;
}

std::size_t
Engine::queuedOn(int v) const
{
    return at(v).queue.size();
}

std::uint64_t
Engine::submit(int v)
{
    Variant &var = at(v);
    const double host_before = rt_.hostTimeMs() * 1e-3;
    auto scope = rt_.memoryScope();
    graph::Minibatch mb =
        graph::sampleNeighbors(g_, var.cfg.sample, var.rng);
    Tensor feature = graph::transferFeatures(mb, var.hostFeatures, rt_);
    const std::uint64_t id = nextId_++;
    var.queue.emplace_back(id, std::move(mb), std::move(feature),
                           static_cast<std::uint32_t>(v));
    hostClockSec_ += rt_.hostTimeMs() * 1e-3 - host_before;
    var.queue.back().submitSec = hostClockSec_;
    if (flight_)
        flight_->event(id, "enqueue", hostClockSec_, rt_.deviceId(),
                       "variant=" + var.name);
    if (obs::enabled())
        obs::tracer().instant("submit", "serve", hostClockSec_,
                              rt_.deviceId(), 0,
                              "\"variant\":\"" +
                                  obs::jsonEscape(var.name) + "\"");
    return id;
}

std::uint64_t
Engine::submit(int v, graph::Minibatch mb, Tensor feature)
{
    Variant &var = at(v);
    if (feature.ndim() != 2 ||
        feature.dim(0) != mb.subgraph.numNodes() ||
        feature.dim(1) != var.cfg.din)
        throw std::runtime_error(
            "Engine::submit: feature must be [subgraph nodes, din]");
    const std::uint64_t id = nextId_++;
    var.queue.emplace_back(id, std::move(mb), std::move(feature),
                           static_cast<std::uint32_t>(v));
    var.queue.back().submitSec = hostClockSec_;
    if (flight_)
        flight_->event(id, "enqueue", hostClockSec_, rt_.deviceId(),
                       "variant=" + var.name);
    return id;
}

PlanKey
Engine::planKey(int v) const
{
    const Variant &var = at(v);
    PlanKey key = makePlanKey(var.modelSource, var.cfg.din, var.cfg.dout,
                              var.cfg.compile, g_);
    key.scope = var.name;
    return key;
}

std::shared_ptr<const core::CompiledModel>
Engine::planFor(int v)
{
    Variant &var = at(v);
    const PlanKey key = planKey(v);
    // Publish the engine clock so the cache (which has none) can
    // timestamp its hit/miss/evict trace instants.
    obs::setVirtualNow(std::max(hostClockSec_, rt_.nowSec()));
    const PlanCache::Stats before = cache_.stats();
    auto plan = cache_.get(key, [&]() {
        return var.compiler.compile(key, var.hostFeatures, var.weights);
    });
    const PlanCache::Stats &after = cache_.stats();
    recordPlanEvents(rt_.planEvents(), before, after);
    if (flight_) {
        const char *outcome = after.hits > before.hits ? "hit"
                              : after.recompiles > before.recompiles
                                  ? "recompile"
                                  : "miss";
        for (const Request &r : var.queue)
            flight_->event(r.id, "plan-lookup", obs::virtualNow(),
                           rt_.deviceId(),
                           "variant=" + var.name + " " + outcome);
    }
    return plan;
}

ServingReport
Engine::drain()
{
    lastLatenciesMs_.clear();
    // An empty cycle has no makespan to divide by: report all-zero
    // metrics and leave every piece of engine state — retained
    // results, cache statistics, transfer bookkeeping — untouched.
    if (queued() == 0)
        return ServingReport{};

    ServingReport report;

    // The cycle occupies [chargedHostSec_, hostClockSec_ + scheduler
    // makespan] on the absolute host clock; remember the start before
    // the bookkeeping below rebases it.
    const double cycle_start_sec = chargedHostSec_;
    obs::Span drain_span("engine.drain", "serve", cycle_start_sec,
                         rt_.deviceId(), 0);

    // Results are retained for one cycle only; a long-lived engine
    // would otherwise accumulate one output tensor per request served.
    results_.clear();

    const std::uint64_t launches_before = rt_.counters().total().launches;

    // One plan-cache lookup per variant with queued work. The
    // shared_ptrs held here pin the plans for the whole cycle; the
    // budget is re-enforced after they are released below.
    std::vector<std::shared_ptr<const core::CompiledModel>> plans(
        variants_.size());
    for (std::size_t i = 0; i < variants_.size(); ++i)
        if (!variants_[i].queue.empty())
            plans[i] = planFor(static_cast<int>(i));

    StreamScheduler sched(rt_, cfg_.numStreams);
    auto scope = rt_.memoryScope();

    // Per-variant FIFO coalescing into micro-batches of at most that
    // variant's maxBatch — never mixing variants — then all batches
    // interleave over the shared streams in global submission order
    // (request ids are engine-wide and monotone).
    struct PlannedBatch
    {
        std::size_t variant = 0;
        std::size_t lo = 0;
        std::size_t hi = 0;
        std::uint64_t firstId = 0;
    };
    std::vector<PlannedBatch> batches;
    for (std::size_t i = 0; i < variants_.size(); ++i) {
        const Variant &v = variants_[i];
        const std::size_t cap = std::max<std::size_t>(1, v.cfg.maxBatch);
        for (std::size_t lo = 0; lo < v.queue.size(); lo += cap) {
            const std::size_t hi = std::min(v.queue.size(), lo + cap);
            batches.push_back({i, lo, hi, v.queue[lo].id});
        }
    }
    std::sort(batches.begin(), batches.end(),
              [](const PlannedBatch &a, const PlannedBatch &b) {
                  return a.firstId < b.firstId;
              });

    // Each logical batch is one primary scheduler run, optionally
    // followed by an ASPIS-style redundant run (deterministically
    // sampled per variant) whose output checksum is compared against
    // the primary's, and — on a detected mismatch — a replay run whose
    // output is the one served (bit-identical to fault-free, since
    // execution is deterministic).
    sim::FaultInjector *fi = rt_.faultInjector();
    struct RunRefs
    {
        int primary = -1;
        int dup = -1;
        int replay = -1;
    };
    std::vector<RunRefs> runs(batches.size());
    int run_idx = 0;
    for (std::size_t b = 0; b < batches.size(); ++b) {
        const PlannedBatch &pb = batches[b];
        Variant &v = variants_[pb.variant];
        std::vector<const Request *> reqs;
        reqs.reserve(pb.hi - pb.lo);
        for (std::size_t i = pb.lo; i < pb.hi; ++i)
            reqs.push_back(&v.queue[i]);

        std::vector<Tensor> outs;
        const auto run_exec = [&](std::vector<Tensor> &dst) {
            sched.run([&]() {
                MicroBatch batch = coalesce(reqs, rt_);
                dst = executeBatch(*plans[pb.variant], batch,
                                   v.weights, rt_, v.ctx, v.grads,
                                   v.cfg.useArena);
            });
        };
        const bool hit = fi && fi->armTransient(rt_.deviceId());
        const std::uint64_t ord =
            fi ? fi->batchOrdinal(rt_.deviceId()) : 0;
        runs[b].primary = run_idx++;
        run_exec(outs);
        if (hit)
            fi->corruptBatch(outs, rt_.deviceId(), hostClockSec_);
        if (sampleDuplicate(v.cfg.duplicationFraction * dupScale_,
                            v.dupAccum)) {
            if (fi)
                fi->noteDuplicate(rt_.deviceId(), hostClockSec_, ord);
            std::vector<Tensor> dup;
            runs[b].dup = run_idx++;
            run_exec(dup);
            const std::uint64_t lhs = tensor::checksum(outs);
            const std::uint64_t rhs = tensor::checksum(dup);
            if (lhs != rhs) {
                if (fi)
                    fi->noteDetection(rt_.deviceId(), hostClockSec_,
                                      ord, lhs, rhs);
                if (obs::enabled())
                    obs::tracer().instant(
                        "fault.detect", "serve", hostClockSec_,
                        rt_.deviceId(), 0,
                        "\"batch\":" + std::to_string(ord));
                runs[b].replay = run_idx++;
                run_exec(outs);
                if (fi)
                    fi->noteReplay(rt_.deviceId(), hostClockSec_,
                                   "transient");
            }
        } else if (hit) {
            fi->noteEscape(rt_.deviceId(), hostClockSec_, ord);
        }
        // Detach results from the device memory scope so they
        // outlive the drain cycle.
        tensor::TrackerScope untracked(nullptr);
        for (std::size_t i = 0; i < reqs.size(); ++i)
            results_.insert_or_assign(reqs[i]->id, outs[i].clone());
    }

    // Timeline: the queued transfers not yet charged to an earlier
    // cycle serialize before the drain's launches begin; per-batch
    // completions come from the scheduler. On the absolute host
    // clock, batch b completes at hostClockSec_ + completions[b] and
    // request latency is simply completion minus its absolute
    // submission point.
    const std::vector<double> completions = sched.completionTimes();
    const double pending_host_sec = hostClockSec_ - chargedHostSec_;
    const double makespan_sec = pending_host_sec + sched.makespanSec();

    std::vector<double> latencies;
    std::vector<double> queue_delays;
    latencies.reserve(queued());
    queue_delays.reserve(queued());
    std::vector<std::vector<double>> by_variant(variants_.size());
    bool any_deadline = false;
    std::size_t met = 0;
    for (std::size_t b = 0; b < batches.size(); ++b) {
        const PlannedBatch &pb = batches[b];
        const Variant &v = variants_[pb.variant];
        // A request completes when its batch's last run (primary, or
        // the redundant/replay runs that guarded it) completes.
        double completion =
            hostClockSec_ +
            completions[static_cast<std::size_t>(runs[b].primary)];
        if (runs[b].dup >= 0)
            completion = std::max(
                completion,
                hostClockSec_ + completions[static_cast<std::size_t>(
                                    runs[b].dup)]);
        if (runs[b].replay >= 0)
            completion = std::max(
                completion,
                hostClockSec_ + completions[static_cast<std::size_t>(
                                    runs[b].replay)]);
        const ScheduledBatch &sb =
            sched.batches()[static_cast<std::size_t>(runs[b].primary)];
        const double service = sb.overheadSec + sb.execSec;
        if (v.cfg.deadlineMs > 0.0)
            any_deadline = true;
        const double exec_start = completion - service;
        if (obs::enabled())
            obs::tracer().complete(
                "batch/" + v.name, "serve", exec_start, service,
                rt_.deviceId(), sb.stream,
                "\"requests\":" + std::to_string(pb.hi - pb.lo));
        for (std::size_t i = pb.lo; i < pb.hi; ++i) {
            const double lat = completion - v.queue[i].submitSec;
            latencies.push_back(lat);
            queue_delays.push_back(std::max(0.0, lat - service));
            by_variant[pb.variant].push_back(lat);
            if (v.cfg.deadlineMs <= 0.0 || lat * 1e3 <= v.cfg.deadlineMs)
                ++met;
            if (flight_) {
                const std::uint64_t id = v.queue[i].id;
                flight_->event(id, "batch-join", exec_start,
                               rt_.deviceId(),
                               "batch=" + std::to_string(b) +
                                   " size=" +
                                   std::to_string(pb.hi - pb.lo));
                flight_->event(id, "exec-start", exec_start,
                               rt_.deviceId(),
                               "stream=" + std::to_string(sb.stream));
                flight_->event(id, "completion", completion,
                               rt_.deviceId(),
                               "latency_ms=" + obs::jsonNum(lat * 1e3));
            }
            if (obs::enabled())
                obs::metrics()
                    .histogram("serve.latency_ms")
                    .observe(lat * 1e3);
        }
    }

    report.requests = queued();
    report.batches = batches.size();
    report.makespanMs = makespan_sec * 1e3;
    report.throughputReqPerSec =
        makespan_sec > 0.0 ? static_cast<double>(report.requests) /
                                 makespan_sec
                           : 0.0;
    report.msPerRequest =
        report.requests
            ? report.makespanMs / static_cast<double>(report.requests)
            : 0.0;

    // Percentiles/means via the shared helper; SLO attainment judges
    // each request against its own variant's deadline.
    fillLatencyStats(report, latencies, queue_delays, 0.0);
    report.sloAttainment =
        any_deadline && !latencies.empty()
            ? static_cast<double>(met) /
                  static_cast<double>(latencies.size())
            : 1.0;

    for (double l : latencies)
        lastLatenciesMs_.push_back(l * 1e3);

    for (std::size_t i = 0; i < variants_.size(); ++i) {
        if (by_variant[i].empty())
            continue;
        report.perVariant.push_back(makeVariantReport(
            variants_[i].name, by_variant[i],
            variants_[i].cfg.deadlineMs));
    }

    for (Variant &v : variants_)
        v.queue.clear();
    chargedHostSec_ = hostClockSec_;

    // Release the cycle's plan pins, then re-enforce the byte budget
    // so residentBytes is bounded at every cycle boundary.
    plans.clear();
    {
        const PlanCache::Stats before = cache_.stats();
        cache_.enforceBudget();
        recordPlanEvents(rt_.planEvents(), before, cache_.stats());
    }

    fillCacheStats(report, cache_.stats());
    report.launches = rt_.counters().total().launches - launches_before;
    if (obs::enabled()) {
        obs::metrics().counter("serve.requests").inc(report.requests);
        obs::metrics().counter("serve.batches").inc(report.batches);
    }
    drain_span.arg("requests",
                   static_cast<std::uint64_t>(report.requests));
    drain_span.arg("batches",
                   static_cast<std::uint64_t>(report.batches));
    drain_span.endAt(cycle_start_sec + makespan_sec);
    return report;
}

BatchCost
Engine::serveOldest(int v, std::size_t n, int stream)
{
    Variant &var = at(v);
    BatchCost cost;
    n = std::min(n, var.queue.size());
    if (n == 0)
        return cost;
    cost.requests = n;

    auto plan = planFor(v);

    std::vector<const Request *> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        reqs.push_back(&var.queue[i]);
    std::vector<Tensor> outs;
    const auto run_once = [&](std::vector<Tensor> &dst) {
        return runOnStream(rt_, stream, [&]() {
            auto scope = rt_.memoryScope();
            MicroBatch batch = coalesce(reqs, rt_);
            dst = executeBatch(*plan, batch, var.weights, rt_, var.ctx,
                               var.grads, var.cfg.useArena);
        });
    };
    const StreamRunCost run = run_once(outs);
    cost.execSec = run.execSec;
    cost.overheadSec = run.overheadSec;

    // ASPIS sandwich, same semantics as drain(); the redundant and
    // replay runs serialize on this stream, so their cost folds into
    // the batch cost the online layer charges.
    sim::FaultInjector *fi = rt_.faultInjector();
    const bool hit = fi && fi->armTransient(rt_.deviceId());
    const std::uint64_t ord = fi ? fi->batchOrdinal(rt_.deviceId()) : 0;
    if (hit)
        fi->corruptBatch(outs, rt_.deviceId(), rt_.nowSec());
    if (sampleDuplicate(var.cfg.duplicationFraction * dupScale_,
                        var.dupAccum)) {
        if (fi)
            fi->noteDuplicate(rt_.deviceId(), rt_.nowSec(), ord);
        std::vector<Tensor> dup;
        const StreamRunCost r2 = run_once(dup);
        cost.execSec += r2.execSec;
        cost.overheadSec += r2.overheadSec;
        const std::uint64_t lhs = tensor::checksum(outs);
        const std::uint64_t rhs = tensor::checksum(dup);
        if (lhs != rhs) {
            if (fi)
                fi->noteDetection(rt_.deviceId(), rt_.nowSec(), ord,
                                  lhs, rhs);
            const StreamRunCost r3 = run_once(outs);
            cost.execSec += r3.execSec;
            cost.overheadSec += r3.overheadSec;
            if (fi)
                fi->noteReplay(rt_.deviceId(), rt_.nowSec(),
                               "transient");
        }
    } else if (hit) {
        fi->noteEscape(rt_.deviceId(), rt_.nowSec(), ord);
    }
    {
        tensor::TrackerScope untracked(nullptr);
        for (std::size_t i = 0; i < n; ++i)
            results_.insert_or_assign(var.queue[i].id, outs[i].clone());
    }
    cost.servedIds.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        cost.servedIds.push_back(var.queue[i].id);
    if (flight_)
        for (std::size_t i = 0; i < n; ++i)
            flight_->event(var.queue[i].id, "batch-join", rt_.nowSec(),
                           rt_.deviceId(),
                           "size=" + std::to_string(n) +
                               " stream=" + std::to_string(stream));

    // The served requests' transfer time (the host clock through the
    // last of them) is now charged, so a later drain() only charges
    // the transfers of the requests it actually serves. submitSec
    // stays absolute — other variants' older requests keep their full
    // accrued queue time.
    chargedHostSec_ =
        std::max(chargedHostSec_, var.queue[n - 1].submitSec);
    var.queue.erase(var.queue.begin(),
                    var.queue.begin() + static_cast<std::ptrdiff_t>(n));

    plan.reset();
    {
        const PlanCache::Stats before = cache_.stats();
        cache_.enforceBudget();
        recordPlanEvents(rt_.planEvents(), before, cache_.stats());
    }
    return cost;
}

std::vector<std::uint64_t>
Engine::dropOldest(int v, std::size_t n)
{
    Variant &var = at(v);
    n = std::min(n, var.queue.size());
    std::vector<std::uint64_t> ids;
    if (n == 0)
        return ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        ids.push_back(var.queue[i].id);
    // Same transfer-clock rebase as serveOldest: the dropped requests'
    // host transfers were charged at submit and leave the epoch with
    // them, so a later drain() only charges surviving requests.
    chargedHostSec_ =
        std::max(chargedHostSec_, var.queue[n - 1].submitSec);
    var.queue.erase(var.queue.begin(),
                    var.queue.begin() + static_cast<std::ptrdiff_t>(n));
    return ids;
}

BatchCost
Engine::hedgeOldest(int v, int stream)
{
    Variant &var = at(v);
    BatchCost cost;
    if (var.queue.empty())
        return cost;
    cost.requests = 1;
    cost.servedIds.push_back(var.queue.front().id);

    auto plan = planFor(v);
    std::vector<const Request *> reqs{&var.queue.front()};
    std::vector<Tensor> outs;
    const StreamRunCost run = runOnStream(rt_, stream, [&]() {
        auto scope = rt_.memoryScope();
        MicroBatch batch = coalesce(reqs, rt_);
        outs = executeBatch(*plan, batch, var.weights, rt_, var.ctx,
                            var.grads, var.cfg.useArena);
    });
    cost.execSec = run.execSec;
    cost.overheadSec = run.overheadSec;
    // The hedge run's output is bit-identical to the primary's (batch
    // invariance), so nothing is stored: the primary serveOldest()
    // remains the one result producer and dedup is purely first-wins
    // on the modeled timeline. No fault injection / ASPIS sandwich —
    // the hedge is itself the backup path.
    plan.reset();
    {
        const PlanCache::Stats before = cache_.stats();
        cache_.enforceBudget();
        recordPlanEvents(rt_.planEvents(), before, cache_.stats());
    }
    return cost;
}

const Tensor *
Engine::result(std::uint64_t id) const
{
    auto it = results_.find(id);
    return it == results_.end() ? nullptr : &it->second;
}

void
absorbReport(obs::Registry &reg, const ServingReport &report,
             const std::string &prefix)
{
    reg.gauge(prefix + ".requests")
        .set(static_cast<double>(report.requests));
    reg.gauge(prefix + ".batches")
        .set(static_cast<double>(report.batches));
    reg.gauge(prefix + ".makespan_ms").set(report.makespanMs);
    reg.gauge(prefix + ".throughput_rps")
        .set(report.throughputReqPerSec);
    reg.gauge(prefix + ".mean_latency_ms").set(report.meanLatencyMs);
    reg.gauge(prefix + ".p50_latency_ms").set(report.p50LatencyMs);
    reg.gauge(prefix + ".p95_latency_ms").set(report.p95LatencyMs);
    reg.gauge(prefix + ".p99_latency_ms").set(report.p99LatencyMs);
    reg.gauge(prefix + ".p999_latency_ms").set(report.p999LatencyMs);
    reg.gauge(prefix + ".max_latency_ms").set(report.maxLatencyMs);
    reg.gauge(prefix + ".mean_queue_delay_ms")
        .set(report.meanQueueDelayMs);
    reg.gauge(prefix + ".slo_attainment").set(report.sloAttainment);
    PlanCache::Stats cache;
    cache.hits = report.cacheHits;
    cache.misses = report.cacheMisses;
    cache.recompiles = report.cacheRecompiles;
    cache.evictions = report.cacheEvictions;
    cache.residentBytes = report.cacheResidentBytes;
    absorbStats(reg, cache, prefix + ".plan_cache");
}

} // namespace hector::serve
