/**
 * @file
 * Compiled-plan cache for the serving runtime.
 *
 * compile() is graph-independent (the paper's compile-once /
 * execute-anywhere property), so a serving system only ever needs one
 * compilation per (model source, compile options, graph schema). The
 * cache memoizes CompiledModels under exactly that key: a hit skips
 * parsing, every inter-operator pass, lowering, and code generation,
 * and returns the very same plan object, so cached execution is
 * bit-identical to a fresh compile. Pass work actually performed is
 * accumulated in Stats::passWork, which is how tests assert that a
 * hit performs zero pass work.
 *
 * Multi-tenant serving (serve::Engine) keeps many plans resident at
 * once, so the cache is byte-budgeted: every entry carries a modeled
 * resident cost (generated plan + arena slots + variant weights, as
 * priced by the caller's CompileFn) and, when a budget is set,
 * least-recently-used unpinned entries are evicted until the resident
 * total fits. A plan is pinned while in flight — the cache never drops
 * an entry some caller still holds a shared_ptr to — and the entry
 * being inserted or hit is never the eviction victim. Stats separate
 * first-time `misses` from `recompiles` (misses of keys that were
 * compiled before and evicted since), so a hot working set that fits
 * its budget provably never recompiles.
 */

#ifndef HECTOR_SERVE_PLAN_CACHE_HH
#define HECTOR_SERVE_PLAN_CACHE_HH

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/compiler.hh"
#include "graph/hetero_graph.hh"

namespace hector::obs
{
class Registry;
}

namespace hector::serve
{

/** Everything a compiled plan depends on. */
struct PlanKey
{
    /** Model definition in the textual inter-operator DSL. */
    std::string modelSource;
    std::int64_t din = 0;
    std::int64_t dout = 0;
    core::CompileOptions options;
    /** HeteroGraph::schemaSignature() of the graphs to serve. */
    std::string graphSchema;
    /**
     * Cache scope ("" = shared). The engine scopes keys by variant
     * name: two tenants registering the same model under the same
     * options still compile, price (weights differ) and autotune
     * independently, so an eviction can never swap one variant's plan
     * for another's compile closure.
     */
    std::string scope;

    /** Canonical string form (the cache's hash key). */
    std::string canonical() const;
};

/** Build a PlanKey for serving @p g with @p source under @p options. */
PlanKey makePlanKey(const std::string &source, std::int64_t din,
                    std::int64_t dout, const core::CompileOptions &options,
                    const graph::HeteroGraph &g);

/**
 * ASPIS-style integrity signature of a compiled plan: an FNV-1a
 * fingerprint of the generated sources. Recorded when a plan enters
 * the cache and re-verified on every hit, so a plan corrupted while
 * resident is caught before it serves a request (the same
 * signature-compare idea the redundant-execution path applies to
 * outputs).
 */
std::uint64_t planSignature(const core::CompiledModel &plan);

/** Memoizes core::compile() results; single-threaded like the sim. */
class PlanCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        /** First-time misses: the key was never compiled before. */
        std::uint64_t misses = 0;
        /** Misses of previously compiled keys (evicted since), i.e.
         *  recompiles forced by the byte budget. */
        std::uint64_t recompiles = 0;
        /** Entries dropped by the LRU eviction policy. */
        std::uint64_t evictions = 0;
        /** Modeled bytes of the currently resident plans. */
        std::size_t residentBytes = 0;
        /** Plan-signature verifications performed (one per hit). */
        std::uint64_t signatureChecks = 0;
        /** Resident plans whose recomputed signature no longer matched
         *  the one recorded at insert (in-memory corruption); the
         *  entry is discarded and recompiled. */
        std::uint64_t signatureMismatches = 0;
        /** Pass work actually performed (misses + recompiles). */
        core::PassStats passWork;
    };

    /**
     * Result of a caller-supplied compilation: the plan, its modeled
     * resident cost, and an optional autotuned-schedule key recorded
     * for observability (scheduleKeyOf).
     */
    struct Compiled
    {
        std::shared_ptr<const core::CompiledModel> plan;
        /** Modeled resident bytes (plan + arena + weights); 0 means
         *  "derive from the generated code alone". */
        std::size_t costBytes = 0;
        std::string scheduleKey;
    };

    /** Produces the plan on a miss (serve::PlanCompiler is the
     *  engine's implementation; the default parses + compiles the key
     *  verbatim). */
    using CompileFn = std::function<Compiled()>;

    /** @param budget_bytes resident-byte budget; 0 = unbounded. */
    explicit PlanCache(std::size_t budget_bytes = 0)
        : budgetBytes_(budget_bytes)
    {}

    /**
     * Return the plan for @p key, compiling it on first use. The
     * returned pointer is shared with the cache: repeated calls with
     * an equal key return the same object (until the entry is evicted
     * and recompiled, in which case the recompile must be
     * deterministic — same key, same CompileFn inputs — so the new
     * object is semantically identical).
     */
    std::shared_ptr<const core::CompiledModel> get(const PlanKey &key);

    /** get() with a caller-supplied compilation (autotuned schedules,
     *  modeled plan cost). @p compile runs only on a miss. */
    std::shared_ptr<const core::CompiledModel> get(const PlanKey &key,
                                                   const CompileFn &compile);

    /** Change the budget; evicts immediately if the residents no
     *  longer fit (0 = unbounded). */
    void setBudgetBytes(std::size_t budget_bytes);

    /** Re-apply the budget now. Callers that pinned plans across a
     *  serving cycle invoke this after releasing them, so
     *  residentBytes is bounded at every cycle boundary. */
    void enforceBudget() { enforceBudget(std::string()); }
    std::size_t budgetBytes() const { return budgetBytes_; }

    /** Modeled resident bytes of @p key's entry; 0 when not resident. */
    std::size_t costOf(const PlanKey &key) const;

    /** Schedule key recorded for @p key; "" when not resident or the
     *  compile recorded none. */
    std::string scheduleKeyOf(const PlanKey &key) const;

    /** Signature recorded for @p key at insert; 0 when not resident. */
    std::uint64_t signatureOf(const PlanKey &key) const;

    /**
     * Fault-injection seam for the signature check: flip one byte of
     * @p key's resident generated code, simulating in-memory plan
     * corruption. The next get() of the key recomputes the signature,
     * counts the mismatch, discards the entry and recompiles. Returns
     * false when the key is not resident. Test-only by design — the
     * one place the cache mutates a plan.
     */
    bool tamperForTest(const PlanKey &key);

    const Stats &stats() const { return stats_; }
    std::size_t size() const { return plans_.size(); }
    void clear();

  private:
    struct Entry
    {
        std::shared_ptr<const core::CompiledModel> plan;
        std::size_t costBytes = 0;
        std::string scheduleKey;
        /** planSignature() at insert, verified on every hit. */
        std::uint64_t signature = 0;
        /** Position in lru_ (front = most recently used). */
        std::list<std::string>::iterator lruIt;
    };

    /** Evict LRU unpinned entries (never @p keep) until the budget
     *  holds or nothing is evictable. */
    void enforceBudget(const std::string &keep);

    std::size_t budgetBytes_ = 0;
    std::unordered_map<std::string, Entry> plans_;
    /** Recency order, front = most recently used. */
    std::list<std::string> lru_;
    /** Every key ever compiled, to tell recompiles from misses. */
    std::unordered_set<std::string> everCompiled_;
    Stats stats_;
};

/**
 * Absorb a PlanCache stat snapshot into the obs metrics registry
 * under @p prefix (e.g. "plan_cache"): the registry's snapshotJson()
 * supersedes the ad-hoc per-bench cache stat plumbing. Gauges are
 * overwritten, so repeated absorption of the same cache is idempotent.
 */
void absorbStats(obs::Registry &reg, const PlanCache::Stats &stats,
                 const std::string &prefix);

} // namespace hector::serve

#endif // HECTOR_SERVE_PLAN_CACHE_HH
