/**
 * @file
 * Compiled-plan cache for the serving runtime.
 *
 * compile() is graph-independent (the paper's compile-once /
 * execute-anywhere property), so a serving system only ever needs one
 * compilation per (model source, compile options, graph schema). The
 * cache memoizes CompiledModels under exactly that key: a hit skips
 * parsing, every inter-operator pass, lowering, and code generation,
 * and returns the very same plan object, so cached execution is
 * bit-identical to a fresh compile. Pass work actually performed is
 * accumulated in Stats::passWork, which is how tests assert that a
 * hit performs zero pass work.
 */

#ifndef HECTOR_SERVE_PLAN_CACHE_HH
#define HECTOR_SERVE_PLAN_CACHE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "core/compiler.hh"
#include "graph/hetero_graph.hh"

namespace hector::serve
{

/** Everything a compiled plan depends on. */
struct PlanKey
{
    /** Model definition in the textual inter-operator DSL. */
    std::string modelSource;
    std::int64_t din = 0;
    std::int64_t dout = 0;
    core::CompileOptions options;
    /** HeteroGraph::schemaSignature() of the graphs to serve. */
    std::string graphSchema;

    /** Canonical string form (the cache's hash key). */
    std::string canonical() const;
};

/** Build a PlanKey for serving @p g with @p source under @p options. */
PlanKey makePlanKey(const std::string &source, std::int64_t din,
                    std::int64_t dout, const core::CompileOptions &options,
                    const graph::HeteroGraph &g);

/** Memoizes core::compile() results; single-threaded like the sim. */
class PlanCache
{
  public:
    struct Stats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        /** Pass work actually performed (misses only). */
        core::PassStats passWork;
    };

    /**
     * Return the plan for @p key, compiling it on first use. The
     * returned pointer is shared with the cache: repeated calls with
     * an equal key return the same object.
     */
    std::shared_ptr<const core::CompiledModel> get(const PlanKey &key);

    const Stats &stats() const { return stats_; }
    std::size_t size() const { return plans_.size(); }
    void clear() { plans_.clear(); }

  private:
    std::unordered_map<std::string,
                       std::shared_ptr<const core::CompiledModel>>
        plans_;
    Stats stats_;
};

} // namespace hector::serve

#endif // HECTOR_SERVE_PLAN_CACHE_HH
