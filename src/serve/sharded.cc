#include "serve/sharded.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_set>

#include "core/frontend.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"

namespace hector::serve
{

using tensor::Tensor;

ShardedSession::ShardedSession(const graph::HeteroGraph &g,
                               Tensor host_features,
                               std::string model_source, ShardedConfig cfg,
                               sim::DeviceGroup &group)
    : g_(g), hostFeatures_(std::move(host_features)),
      modelSource_(std::move(model_source)), cfg_(cfg), group_(group),
      partition_([&] {
          validateServingConfig(cfg.serving, "ShardedSession");
          graph::PartitionSpec ps = cfg.partition;
          ps.numShards = group.size();
          return graph::partitionGraph(g, ps);
      }()),
      cache_(cfg.serving.planBudgetBytes),
      compiler_(g, "default", cfg.serving,
                cfg.serving.autotuneSchedules),
      rng_(cfg.serving.seed),
      execCtxs_(static_cast<std::size_t>(group.size())),
      execGrads_(static_cast<std::size_t>(group.size())),
      queues_(static_cast<std::size_t>(group.size())),
      pendingHostSec_(static_cast<std::size_t>(group.size()), 0.0),
      dead_(static_cast<std::size_t>(group.size()), 0)
{
    if (hostFeatures_.dim(1) != cfg_.serving.din)
        throw std::runtime_error(
            "ShardedSession: host feature dim != config din");
    // Same seeding order as ServingSession / the engine registry:
    // weights are drawn from the pristine program *before* any
    // sampling, so the single-device and sharded sessions consume
    // identical RNG streams (initVariantWeights is the one
    // construction path for per-variant weights).
    weights_ = initVariantWeights(modelSource_, cfg_.serving.din,
                                  cfg_.serving.dout, g_, rng_);

    // Replicate the weights: one broadcast from the all-gather root to
    // every other device over the interconnect, paid once per session.
    double weight_bytes = 0.0;
    for (const auto &[name, w] : weights_)
        weight_bytes += static_cast<double>(w.bytes());
    for (int d = 1; d < group_.size(); ++d)
        group_.interconnect().transfer(0, d, weight_bytes,
                                       group_.nowSec());

    // Load the sharded feature store: each device bulk-transfers its
    // own shard's feature rows over its own PCIe lanes, paid once per
    // session (the rows stay resident; requests only move structure).
    const double row_bytes =
        static_cast<double>(cfg_.serving.din) * sizeof(float);
    for (int d = 0; d < group_.size(); ++d) {
        sim::Runtime &rt = group_.device(d);
        rt.hostOverhead(graph::hostTransferSec(
            static_cast<double>(
                partition_.shardSizes[static_cast<std::size_t>(d)]) *
                row_bytes,
            rt.spec()));
    }
}

std::shared_ptr<const core::CompiledModel>
ShardedSession::compiledPlan()
{
    // One lookup per cycle/batch through the shared PlanCompiler
    // (autotuned schedule, modeled plan cost); plan-lifecycle events
    // are recorded against the all-gather root's runtime.
    const PlanKey key =
        makePlanKey(modelSource_, cfg_.serving.din, cfg_.serving.dout,
                    cfg_.serving.compile, g_);
    // Timestamp the cache's trace instants with the group clock (the
    // cache itself holds no runtime reference).
    obs::setVirtualNow(group_.nowSec());
    const PlanCache::Stats before = cache_.stats();
    auto plan = cache_.get(key, [&]() {
        return compiler_.compile(key, hostFeatures_, weights_);
    });
    recordPlanEvents(group_.device(0).planEvents(), before,
                     cache_.stats());
    return plan;
}

int
ShardedSession::homeShard(const graph::Minibatch &mb) const
{
    // Affinity x headroom routing. Placement cannot change any output
    // bit (per-request arithmetic is batch- and device-invariant), so
    // the router trades the two things placement *does* change: halo
    // bytes (maximized ownership -> minimized cut traffic) and load
    // balance (hub shards would otherwise swallow most neighborhoods
    // — the plurality owner alone routes ~40% of bgs requests to one
    // device). Scoring owned_vertices x queue_headroom with a hard
    // per-device queue cap keeps both bounded, deterministically; by
    // pigeonhole some shard is always below the cap. Quarantined
    // devices are never candidates; with every device alive the math
    // is exactly the pre-fault-tolerance formula, so routing (and the
    // whole timeline) stays bit-identical on fault-free runs.
    const std::int64_t k = group_.size();
    const std::int64_t alive = aliveCount();
    if (alive == 0)
        throw std::runtime_error(
            "ShardedSession: no surviving devices to route to");
    std::vector<std::int64_t> owned(static_cast<std::size_t>(k), 0);
    for (std::int64_t v : mb.nodeMap)
        ++owned[static_cast<std::size_t>(
            partition_.shardOf[static_cast<std::size_t>(v)])];
    const std::int64_t total =
        static_cast<std::int64_t>(queued()) + 1;
    const std::int64_t cap = (total + alive - 1) / alive + 1;
    // The breaker mask is advisory: honored only while some alive
    // device is unmasked, so routing always makes progress.
    bool use_avoid = false;
    if (!routeAvoid_.empty())
        for (int s = 0; s < k; ++s)
            if (!dead_[static_cast<std::size_t>(s)] &&
                !routeAvoid_[static_cast<std::size_t>(s)])
                use_avoid = true;
    int best = -1;
    std::int64_t best_score = -1;
    for (int s = 0; s < k; ++s) {
        if (dead_[static_cast<std::size_t>(s)])
            continue;
        if (use_avoid && routeAvoid_[static_cast<std::size_t>(s)])
            continue;
        const std::int64_t load = static_cast<std::int64_t>(
            queues_[static_cast<std::size_t>(s)].size());
        const std::int64_t headroom = cap - load;
        if (headroom <= 0)
            continue;
        const std::int64_t score =
            (owned[static_cast<std::size_t>(s)] + 1) * headroom;
        if (score > best_score) {
            best = s;
            best_score = score;
        }
    }
    if (best >= 0)
        return best;
    for (int s = 0; s < k; ++s)
        if (!dead_[static_cast<std::size_t>(s)] &&
            (!use_avoid || !routeAvoid_[static_cast<std::size_t>(s)]))
            return s;
    for (int s = 0; s < k; ++s)
        if (!dead_[static_cast<std::size_t>(s)])
            return s;
    return 0;
}

void
ShardedSession::setRouteAvoid(std::vector<char> avoid)
{
    if (!avoid.empty() &&
        avoid.size() != static_cast<std::size_t>(group_.size()))
        throw std::runtime_error(
            "ShardedSession::setRouteAvoid: mask must be empty or one "
            "entry per device");
    routeAvoid_ = std::move(avoid);
}

bool
ShardedSession::isDead(int device) const
{
    if (device < 0 || device >= group_.size())
        throw std::runtime_error("ShardedSession: device out of range");
    return dead_[static_cast<std::size_t>(device)] != 0;
}

int
ShardedSession::aliveCount() const
{
    int n = 0;
    for (char d : dead_)
        if (!d)
            ++n;
    return n;
}

bool
ShardedSession::shouldDuplicate()
{
    const double f = cfg_.serving.duplicationFraction * dupScale_;
    if (f <= 0.0)
        return false;
    // Error diffusion: of the first k primary batches, exactly
    // round(k * f) dual-issue, with no RNG — the sampling pattern is a
    // pure function of the call sequence, so a fault run replays
    // identically at any thread count.
    dupAccum_ += f;
    if (dupAccum_ >= 1.0 - 1e-12) {
        dupAccum_ -= 1.0;
        return true;
    }
    return false;
}

std::vector<Tensor>
ShardedSession::runBatch(const core::CompiledModel &plan,
                         const std::vector<const Request *> &reqs, int d)
{
    sim::Runtime &rt = group_.device(d);
    MicroBatch batch = coalesce(reqs, rt);
    return executeBatch(plan, batch, weights_, rt,
                        execCtxs_[static_cast<std::size_t>(d)],
                        execGrads_[static_cast<std::size_t>(d)],
                        cfg_.serving.useArena);
}

std::vector<ShardedSession::Rerouted>
ShardedSession::quarantine(int device, double t_sec)
{
    if (device < 0 || device >= group_.size())
        throw std::runtime_error("ShardedSession: device out of range");
    std::vector<Rerouted> moved;
    if (dead_[static_cast<std::size_t>(device)])
        return moved;
    dead_[static_cast<std::size_t>(device)] = 1;
    sim::FaultInjector *fi = group_.faultInjector();
    if (fi && !fi->isFailed(device))
        fi->markFailed(device, t_sec);

    auto &q = queues_[static_cast<std::size_t>(device)];
    if (!q.empty() && aliveCount() == 0)
        throw std::runtime_error(
            "ShardedSession::quarantine: requests queued but no "
            "surviving devices");
    moved.reserve(q.size());
    for (Request &r : q) {
        // The dead device's resident copies are gone: the subgraph
        // structure re-sends over the new home's PCIe lanes, exactly
        // like a fresh submit (features re-gather at serve time, the
        // dead shard's rows via the host-fallback halo path).
        const int to = homeShard(r.mb);
        sim::Runtime &rt = group_.device(to);
        const double transfer = graph::hostTransferSec(
            static_cast<double>(r.mb.subgraph.structureBytes()),
            rt.spec());
        rt.hostOverhead(transfer);
        pendingHostSec_[static_cast<std::size_t>(to)] += transfer;
        Rerouted rr;
        rr.id = r.id;
        rr.from = device;
        rr.to = to;
        rr.transferSec = transfer;
        moved.push_back(rr);
        if (fi)
            fi->noteReroute(r.id, device, to, t_sec);
        if (flight_)
            flight_->event(r.id, "reroute", t_sec, to,
                           "from=" + std::to_string(device));
        r.submitSec = pendingHostSec_[static_cast<std::size_t>(to)];
        queues_[static_cast<std::size_t>(to)].push_back(std::move(r));
    }
    q.clear();
    pendingHostSec_[static_cast<std::size_t>(device)] = 0.0;
    if (obs::enabled())
        obs::tracer().instant(
            "device.quarantine", "serve", t_sec, device, 0,
            "\"rerouted\":" + std::to_string(moved.size()));
    return moved;
}

ShardedSession::SubmitInfo
ShardedSession::enqueue(int home, graph::Minibatch mb, Tensor feature,
                        double submit_sec)
{
    SubmitInfo info;
    info.id = nextId_++;
    info.device = home;
    auto &q = queues_[static_cast<std::size_t>(home)];
    q.emplace_back(info.id, std::move(mb), std::move(feature));
    q.back().submitSec = submit_sec;
    if (flight_)
        flight_->event(info.id, "enqueue", group_.nowSec(), home,
                       "home=" + std::to_string(home));
    if (obs::enabled())
        obs::tracer().instant("submit", "serve", group_.nowSec(), home,
                              0,
                              "\"home\":" + std::to_string(home));
    return info;
}

ShardedSession::SubmitInfo
ShardedSession::submitRouted()
{
    // Sample first (advancing the shared request stream), then route.
    // With the feature store device-resident, PCIe only carries the
    // subgraph structure; the gathered feature tensor is the batch
    // assembly's working set (its kernel cost is charged by
    // coalesce()), not a host transfer.
    graph::Minibatch mb =
        graph::sampleNeighbors(g_, cfg_.serving.sample, rng_);
    const int home = homeShard(mb);
    sim::Runtime &rt = group_.device(home);
    Tensor feature;
    {
        auto scope = rt.memoryScope();
        feature = graph::gatherFeatures(mb, hostFeatures_);
    }
    const double transfer = graph::hostTransferSec(
        static_cast<double>(mb.subgraph.structureBytes()), rt.spec());
    rt.hostOverhead(transfer);
    pendingHostSec_[static_cast<std::size_t>(home)] += transfer;
    SubmitInfo info = enqueue(
        home, std::move(mb), std::move(feature),
        pendingHostSec_[static_cast<std::size_t>(home)]);
    info.transferSec = transfer;
    return info;
}

ShardedSession::SubmitInfo
ShardedSession::submitRouted(graph::Minibatch mb, Tensor feature)
{
    if (feature.ndim() != 2 ||
        feature.dim(0) != mb.subgraph.numNodes() ||
        feature.dim(1) != cfg_.serving.din)
        throw std::runtime_error(
            "ShardedSession::submitRouted: feature must be [subgraph "
            "nodes, din]");
    const int home = homeShard(mb);
    return enqueue(
        home, std::move(mb), std::move(feature),
        pendingHostSec_[static_cast<std::size_t>(home)]);
}

std::size_t
ShardedSession::queued() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

std::size_t
ShardedSession::queuedOn(int device) const
{
    if (device < 0 || device >= group_.size())
        throw std::runtime_error("ShardedSession: device out of range");
    return queues_[static_cast<std::size_t>(device)].size();
}

std::vector<std::pair<int, double>>
ShardedSession::batchHaloBytes(const std::vector<const Request *> &reqs,
                               int home,
                               double *host_fallback_bytes) const
{
    // Unique full-graph vertices across the batch (the union gather
    // deduplicates them), grouped by owner shard. Each non-home row
    // crosses the owner -> home link once; rows whose owner has failed
    // can't — they re-gather from the host store instead.
    const double row_bytes =
        static_cast<double>(cfg_.serving.din) * sizeof(float);
    std::unordered_set<std::int64_t> seen;
    std::vector<double> per_owner(
        static_cast<std::size_t>(group_.size()), 0.0);
    for (const Request *r : reqs)
        for (std::int64_t v : r->mb.nodeMap)
            if (seen.insert(v).second) {
                const std::int32_t owner =
                    partition_.shardOf[static_cast<std::size_t>(v)];
                if (owner == home)
                    continue;
                if (dead_[static_cast<std::size_t>(owner)]) {
                    if (host_fallback_bytes)
                        *host_fallback_bytes += row_bytes;
                } else {
                    per_owner[static_cast<std::size_t>(owner)] +=
                        row_bytes;
                }
            }
    std::vector<std::pair<int, double>> halo;
    for (int s = 0; s < group_.size(); ++s)
        if (per_owner[static_cast<std::size_t>(s)] > 0.0)
            halo.emplace_back(s, per_owner[static_cast<std::size_t>(s)]);
    return halo;
}

ShardedReport
ShardedSession::drain()
{
    ShardedReport report;
    report.devices = group_.size();
    report.perDeviceRequests.assign(
        static_cast<std::size_t>(group_.size()), 0);
    report.cutEdges = partition_.cutEdges;
    report.cutRatio = partition_.cutRatio();

    sim::FaultInjector *fi = group_.faultInjector();

    // Phase 0: failures already due on the group clock fire before any
    // work is placed — the dead device's queue re-routes to survivors.
    if (fi)
        for (int d = 0; d < group_.size(); ++d)
            if (!dead_[static_cast<std::size_t>(d)] &&
                fi->failureDue(d, group_.nowSec()))
                report.requestsRerouted +=
                    quarantine(d, fi->failureTimeSec(d)).size();
    report.devicesFailed = group_.size() - aliveCount();

    if (queued() == 0)
        return report;
    if (aliveCount() == 0)
        throw std::runtime_error(
            "ShardedSession::drain: requests queued but no surviving "
            "devices");

    results_.clear();

    const std::uint64_t launches_before = group_.totalLaunches();
    const double ic_busy_before = group_.interconnect().totalBusySec();

    const auto plan = compiledPlan();

    // Cycle timeline on the shared clock: each device's queued
    // structure transfers serialize on its own PCIe lanes (devices
    // overlap), then the device pulls its halo over the interconnect
    // and computes, and every batch's outputs gather onto the
    // all-gather root (device 0 unless it is quarantined).
    const double base = group_.nowSec();
    obs::Span drain_span("sharded.drain", "serve", base, 0, 0);

    const std::size_t cap =
        std::max<std::size_t>(1, cfg_.serving.maxBatch);
    const double dout_bytes =
        static_cast<double>(cfg_.serving.dout) * sizeof(float);
    const double kInf = std::numeric_limits<double>::infinity();

    const auto lowest_alive = [&]() {
        for (int d = 0; d < group_.size(); ++d)
            if (!dead_[static_cast<std::size_t>(d)])
                return d;
        return 0;
    };
    const int root = lowest_alive();

    std::vector<double> latencies;
    std::vector<double> queue_delays;
    latencies.reserve(queued());
    queue_delays.reserve(queued());
    double cycle_end = base;
    double halo_bytes = 0.0;
    double gather_bytes = 0.0;
    double primary_exec_sec = 0.0;
    double redundant_exec_sec = 0.0;

    // A batch whose modeled compute finishes after its device's
    // failure instant is lost with the device; copies of its requests
    // replay on survivors in wave 2.
    struct LostBatch
    {
        std::vector<Request> reqs;
        int from = 0;
        double tFail = 0.0;
    };
    std::vector<LostBatch> lost;
    std::vector<double> dev_end(
        static_cast<std::size_t>(group_.size()), base);

    // Wave 1: every alive device serves its own queue.
    for (int d = 0; d < group_.size(); ++d) {
        if (dead_[static_cast<std::size_t>(d)])
            continue;
        auto &q = queues_[static_cast<std::size_t>(d)];
        if (q.empty())
            continue;
        sim::Runtime &rt = group_.device(d);
        StreamScheduler sched(rt, cfg_.serving.numStreams);
        auto scope = rt.memoryScope();

        const double host_end =
            base + pendingHostSec_[static_cast<std::size_t>(d)];
        cycle_end = std::max(cycle_end, host_end);
        const double t_fail = fi ? fi->failureTimeSec(d) : kInf;

        // Halo exchange for everything this device is about to serve:
        // surviving owners charge the owner -> home links per batch,
        // rows of failed owners re-gather from the host store over
        // this device's PCIe lanes (serialized after its structure
        // transfers).
        double comm_done = host_end;
        double device_halo = 0.0;
        double fallback_sec = 0.0;
        std::vector<std::vector<const Request *>> batches;
        for (std::size_t lo = 0; lo < q.size(); lo += cap) {
            const std::size_t hi = std::min(q.size(), lo + cap);
            std::vector<const Request *> reqs;
            reqs.reserve(hi - lo);
            for (std::size_t i = lo; i < hi; ++i)
                reqs.push_back(&q[i]);
            double fb = 0.0;
            for (const auto &[owner, bytes] :
                 batchHaloBytes(reqs, d, &fb)) {
                comm_done = std::max(
                    comm_done, group_.interconnect().transfer(
                                   owner, d, bytes, host_end));
                halo_bytes += bytes;
                device_halo += bytes;
            }
            if (fb > 0.0) {
                const double t = graph::hostTransferSec(fb, rt.spec());
                rt.hostOverhead(t);
                fallback_sec += t;
            }
            batches.push_back(std::move(reqs));
        }
        comm_done = std::max(comm_done, host_end + fallback_sec);
        if (obs::enabled() && comm_done > host_end)
            obs::tracer().complete(
                "halo", "comm", host_end, comm_done - host_end, d, 0,
                "\"bytes\":" + obs::jsonNum(device_halo));

        // Compute: this device's own driver thread and streams, on the
        // shared overlap rule, starting once the halo is resident.
        // Primary runs may be sandwiched by the ASPIS-style redundancy
        // machinery: a scheduled transient corrupts the primary's
        // output, a deterministically sampled duplicate re-executes and
        // compares checksums, and a detected mismatch replays a third
        // time (the replay is served — bit-identical to fault-free).
        struct Runs
        {
            int primary = -1;
            int dup = -1;
            int replay = -1;
        };
        std::vector<Runs> runs(batches.size());
        std::vector<std::vector<Tensor>> outs(batches.size());
        int run_idx = 0;
        for (std::size_t b = 0; b < batches.size(); ++b) {
            const bool hit = fi && fi->armTransient(d);
            const std::uint64_t ord = fi ? fi->batchOrdinal(d) : 0;
            runs[b].primary = run_idx++;
            sched.run([&, b]() {
                outs[b] = runBatch(*plan, batches[b], d);
            });
            if (hit)
                fi->corruptBatch(outs[b], d, host_end);
            if (shouldDuplicate()) {
                ++report.duplicatesIssued;
                if (fi)
                    fi->noteDuplicate(d, host_end, ord);
                std::vector<Tensor> dup;
                runs[b].dup = run_idx++;
                sched.run([&]() {
                    dup = runBatch(*plan, batches[b], d);
                });
                const std::uint64_t lhs = tensor::checksum(outs[b]);
                const std::uint64_t rhs = tensor::checksum(dup);
                if (lhs != rhs) {
                    ++report.transientsDetected;
                    if (fi)
                        fi->noteDetection(d, host_end, ord, lhs, rhs);
                    if (obs::enabled())
                        obs::tracer().instant(
                            "fault.detect", "serve", host_end, d, 0,
                            "\"batch\":" + std::to_string(ord));
                    runs[b].replay = run_idx++;
                    sched.run([&, b]() {
                        outs[b] = runBatch(*plan, batches[b], d);
                    });
                    if (fi)
                        fi->noteReplay(d, host_end, "transient");
                    report.requestsReplayed += batches[b].size();
                    if (flight_)
                        for (const Request *r : batches[b])
                            flight_->event(r->id, "replay", host_end,
                                           d, "why=transient");
                }
            } else if (hit) {
                fi->noteEscape(d, host_end, ord);
            }
        }

        const std::vector<double> completions = sched.completionTimes();
        for (std::size_t b = 0; b < batches.size(); ++b) {
            primary_exec_sec +=
                sched.batches()[static_cast<std::size_t>(
                                    runs[b].primary)]
                    .execSec;
            if (runs[b].dup >= 0)
                redundant_exec_sec +=
                    sched.batches()[static_cast<std::size_t>(
                                        runs[b].dup)]
                        .execSec;
            if (runs[b].replay >= 0)
                redundant_exec_sec +=
                    sched.batches()[static_cast<std::size_t>(
                                        runs[b].replay)]
                        .execSec;
        }

        double device_end = host_end;
        for (std::size_t b = 0; b < batches.size(); ++b) {
            double compute_done =
                comm_done + completions[static_cast<std::size_t>(
                                runs[b].primary)];
            if (runs[b].dup >= 0)
                compute_done = std::max(
                    compute_done,
                    comm_done + completions[static_cast<std::size_t>(
                                    runs[b].dup)]);
            if (runs[b].replay >= 0)
                compute_done = std::max(
                    compute_done,
                    comm_done + completions[static_cast<std::size_t>(
                                    runs[b].replay)]);
            if (compute_done > t_fail) {
                // Lost with the device: the outputs never left it.
                LostBatch lb;
                lb.from = d;
                lb.tFail = t_fail;
                lb.reqs.reserve(batches[b].size());
                for (const Request *r : batches[b]) {
                    lb.reqs.push_back(*r);
                    if (flight_)
                        flight_->event(r->id, "lost", t_fail, d,
                                       "batch=" + std::to_string(b));
                }
                lost.push_back(std::move(lb));
                continue;
            }
            {
                tensor::TrackerScope untracked(nullptr);
                for (std::size_t i = 0; i < batches[b].size(); ++i)
                    results_.insert_or_assign(batches[b][i]->id,
                                              outs[b][i].clone());
            }
            // All-gather this batch's outputs onto the root.
            double out_bytes = 0.0;
            for (const Request *r : batches[b])
                out_bytes += static_cast<double>(
                                 r->mb.subgraph.numNodes()) *
                             dout_bytes;
            double final_done = compute_done;
            if (d != root) {
                final_done = group_.interconnect().transfer(
                    d, root, out_bytes, compute_done);
                gather_bytes += out_bytes;
            }
            cycle_end = std::max(cycle_end, final_done);
            device_end = std::max(device_end, final_done);

            const ScheduledBatch &sb =
                sched.batches()[static_cast<std::size_t>(
                    runs[b].primary)];
            const double service = sb.overheadSec + sb.execSec;
            const double exec_start =
                comm_done + completions[static_cast<std::size_t>(
                                runs[b].primary)] -
                sb.execSec;
            if (obs::enabled()) {
                obs::tracer().complete(
                    "batch", "serve", exec_start, sb.execSec, d,
                    sb.stream,
                    "\"requests\":" +
                        std::to_string(batches[b].size()));
                if (d != root)
                    obs::tracer().complete(
                        "gather", "comm", compute_done,
                        final_done - compute_done, d, sb.stream,
                        "\"bytes\":" + obs::jsonNum(out_bytes));
            }
            for (std::size_t i = 0; i < batches[b].size(); ++i) {
                const Request *r = batches[b][i];
                const double lat =
                    final_done - (base + r->submitSec);
                latencies.push_back(lat);
                queue_delays.push_back(std::max(0.0, lat - service));
                if (flight_) {
                    const std::uint64_t id = r->id;
                    flight_->event(id, "batch-join", host_end, d,
                                   "batch=" + std::to_string(b) +
                                       " size=" +
                                       std::to_string(
                                           batches[b].size()));
                    if (comm_done > host_end)
                        flight_->event(
                            id, "halo", comm_done, d,
                            "bytes=" + obs::jsonNum(device_halo));
                    flight_->event(id, "exec-start", exec_start, d,
                                   "stream=" +
                                       std::to_string(sb.stream));
                    if (d != root)
                        flight_->event(
                            id, "all-gather", final_done, d,
                            "bytes=" + obs::jsonNum(out_bytes));
                    flight_->event(
                        id, "completion", final_done, d,
                        "latency_ms=" + obs::jsonNum(lat * 1e3));
                }
            }
            report.perDeviceRequests[static_cast<std::size_t>(d)] +=
                batches[b].size();
            report.batches += 1;
            report.requests += batches[b].size();
        }
        dev_end[static_cast<std::size_t>(d)] = device_end;
    }

    // Fire failures that struck inside this cycle's window: the device
    // is quarantined for the cycles to come (phase 0 above handles
    // failures that were already due at entry).
    double t_fail_max = base;
    if (fi)
        for (int d = 0; d < group_.size(); ++d) {
            if (dead_[static_cast<std::size_t>(d)])
                continue;
            const double tf = fi->failureTimeSec(d);
            if (tf <= cycle_end) {
                dead_[static_cast<std::size_t>(d)] = 1;
                fi->markFailed(d, tf);
                t_fail_max = std::max(t_fail_max, tf);
            }
        }
    report.devicesFailed = group_.size() - aliveCount();

    // Wave 2: replay batches the failure lost, on the survivors.
    if (!lost.empty()) {
        if (aliveCount() == 0)
            throw std::runtime_error(
                "ShardedSession::drain: device failure with no "
                "survivors to replay on");
        const int root2 = lowest_alive();

        // Route each lost request to a survivor by the same
        // affinity x headroom rule, over the replay load alone.
        std::vector<std::vector<Request>> replay_q(
            static_cast<std::size_t>(group_.size()));
        std::size_t n_lost = 0;
        for (const LostBatch &lb : lost)
            n_lost += lb.reqs.size();
        const std::int64_t alive = aliveCount();
        const std::int64_t rcap =
            (static_cast<std::int64_t>(n_lost) + alive - 1) / alive + 1;
        for (LostBatch &lb : lost)
            for (Request &r : lb.reqs) {
                std::vector<std::int64_t> owned(
                    static_cast<std::size_t>(group_.size()), 0);
                for (std::int64_t v : r.mb.nodeMap)
                    ++owned[static_cast<std::size_t>(
                        partition_.shardOf[static_cast<std::size_t>(
                            v)])];
                int best = -1;
                std::int64_t best_score = -1;
                for (int s = 0; s < group_.size(); ++s) {
                    if (dead_[static_cast<std::size_t>(s)])
                        continue;
                    const std::int64_t headroom =
                        rcap - static_cast<std::int64_t>(
                                   replay_q[static_cast<std::size_t>(
                                                s)]
                                       .size());
                    if (headroom <= 0)
                        continue;
                    const std::int64_t score =
                        (owned[static_cast<std::size_t>(s)] + 1) *
                        headroom;
                    if (score > best_score) {
                        best = s;
                        best_score = score;
                    }
                }
                if (best < 0)
                    best = root2;
                if (fi)
                    fi->noteReroute(r.id, lb.from, best, lb.tFail);
                ++report.requestsRerouted;
                if (flight_)
                    flight_->event(r.id, "reroute", lb.tFail, best,
                                   "from=" + std::to_string(lb.from));
                replay_q[static_cast<std::size_t>(best)].push_back(
                    std::move(r));
            }
        report.requestsReplayed += n_lost;

        for (int s = 0; s < group_.size(); ++s) {
            auto &rq = replay_q[static_cast<std::size_t>(s)];
            if (rq.empty())
                continue;
            sim::Runtime &rt = group_.device(s);
            StreamScheduler sched(rt, cfg_.serving.numStreams);
            auto scope = rt.memoryScope();

            // The survivor starts once the failure has happened and
            // its own wave-1 work is done; the lost requests' subgraph
            // structures re-send serialized on its PCIe lanes, and
            // the dead shard's feature rows re-gather from the host
            // store (host-fallback halo).
            double host_end = std::max(
                t_fail_max, dev_end[static_cast<std::size_t>(s)]);
            for (const Request &r : rq) {
                const double t = graph::hostTransferSec(
                    static_cast<double>(
                        r.mb.subgraph.structureBytes()),
                    rt.spec());
                rt.hostOverhead(t);
                host_end += t;
            }
            cycle_end = std::max(cycle_end, host_end);

            double comm_done = host_end;
            double fallback_sec = 0.0;
            std::vector<std::vector<const Request *>> batches;
            for (std::size_t lo = 0; lo < rq.size(); lo += cap) {
                const std::size_t hi = std::min(rq.size(), lo + cap);
                std::vector<const Request *> reqs;
                reqs.reserve(hi - lo);
                for (std::size_t i = lo; i < hi; ++i)
                    reqs.push_back(&rq[i]);
                double fb = 0.0;
                for (const auto &[owner, bytes] :
                     batchHaloBytes(reqs, s, &fb)) {
                    comm_done = std::max(
                        comm_done, group_.interconnect().transfer(
                                       owner, s, bytes, host_end));
                    halo_bytes += bytes;
                }
                if (fb > 0.0) {
                    const double t =
                        graph::hostTransferSec(fb, rt.spec());
                    rt.hostOverhead(t);
                    fallback_sec += t;
                }
                batches.push_back(std::move(reqs));
            }
            comm_done = std::max(comm_done, host_end + fallback_sec);

            std::vector<std::vector<Tensor>> outs(batches.size());
            for (std::size_t b = 0; b < batches.size(); ++b) {
                sched.run([&, b]() {
                    outs[b] = runBatch(*plan, batches[b], s);
                });
                if (fi)
                    fi->noteReplay(s, host_end, "device-failure");
            }

            const std::vector<double> completions =
                sched.completionTimes();
            for (std::size_t b = 0; b < batches.size(); ++b) {
                redundant_exec_sec += sched.batches()[b].execSec;
                const double compute_done = comm_done + completions[b];
                {
                    tensor::TrackerScope untracked(nullptr);
                    for (std::size_t i = 0; i < batches[b].size();
                         ++i)
                        results_.insert_or_assign(
                            batches[b][i]->id, outs[b][i].clone());
                }
                double out_bytes = 0.0;
                for (const Request *r : batches[b])
                    out_bytes += static_cast<double>(
                                     r->mb.subgraph.numNodes()) *
                                 dout_bytes;
                double final_done = compute_done;
                if (s != root2) {
                    final_done = group_.interconnect().transfer(
                        s, root2, out_bytes, compute_done);
                    gather_bytes += out_bytes;
                }
                cycle_end = std::max(cycle_end, final_done);

                const ScheduledBatch &sb = sched.batches()[b];
                const double service = sb.overheadSec + sb.execSec;
                for (const Request *r : batches[b]) {
                    const double lat =
                        final_done - (base + r->submitSec);
                    latencies.push_back(lat);
                    queue_delays.push_back(
                        std::max(0.0, lat - service));
                    if (flight_) {
                        flight_->event(r->id, "replay", host_end, s,
                                       "why=device-failure");
                        flight_->event(
                            r->id, "completion", final_done, s,
                            "latency_ms=" + obs::jsonNum(lat * 1e3));
                    }
                }
                report.perDeviceRequests[static_cast<std::size_t>(
                    s)] += batches[b].size();
                report.batches += 1;
                report.requests += batches[b].size();
            }
        }
    }

    group_.advanceTo(cycle_end);

    drain_span.arg("requests",
                   static_cast<std::uint64_t>(report.requests));
    drain_span.arg("devices", static_cast<std::uint64_t>(
                                  static_cast<unsigned>(group_.size())));
    drain_span.endAt(cycle_end);

    const double makespan_sec = cycle_end - base;
    report.makespanMs = makespan_sec * 1e3;
    report.throughputReqPerSec =
        makespan_sec > 0.0
            ? static_cast<double>(report.requests) / makespan_sec
            : 0.0;
    report.msPerRequest =
        report.requests
            ? report.makespanMs / static_cast<double>(report.requests)
            : 0.0;

    fillLatencyStats(report, latencies, queue_delays,
                     cfg_.serving.deadlineMs);

    report.haloBytes = halo_bytes;
    report.gatherBytes = gather_bytes;
    report.interconnectMs =
        (group_.interconnect().totalBusySec() - ic_busy_before) * 1e3;
    report.duplicationOverheadPct =
        primary_exec_sec > 0.0
            ? redundant_exec_sec / primary_exec_sec * 100.0
            : 0.0;
    fillCacheStats(report, cache_.stats());
    report.launches = group_.totalLaunches() - launches_before;
    if (fi && obs::enabled())
        absorbFaultStats(obs::metrics(), fi->stats(), "fault");

    for (auto &q : queues_)
        q.clear();
    std::fill(pendingHostSec_.begin(), pendingHostSec_.end(), 0.0);
    return report;
}

ShardBatch
ShardedSession::serveOldestOn(int device, std::size_t n, int stream)
{
    if (device < 0 || device >= group_.size())
        throw std::runtime_error("ShardedSession: device out of range");
    if (dead_[static_cast<std::size_t>(device)])
        throw std::runtime_error(
            "ShardedSession::serveOldestOn: device is quarantined");
    ShardBatch out;
    out.device = device;
    auto &q = queues_[static_cast<std::size_t>(device)];
    n = std::min(n, q.size());
    if (n == 0)
        return out;
    out.cost.requests = n;
    out.cost.servedIds.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.cost.servedIds.push_back(q[i].id);
    if (flight_)
        for (std::size_t i = 0; i < n; ++i)
            flight_->event(q[i].id, "batch-join", group_.nowSec(),
                           device,
                           "size=" + std::to_string(n) +
                               " stream=" + std::to_string(stream));

    const auto plan = compiledPlan();

    std::vector<const Request *> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        reqs.push_back(&q[i]);
    out.haloBytesByOwner =
        batchHaloBytes(reqs, device, &out.hostFallbackBytes);
    const double dout_bytes =
        static_cast<double>(cfg_.serving.dout) * sizeof(float);
    if (device != 0)
        for (const Request *r : reqs)
            out.gatherBytes += static_cast<double>(
                                   r->mb.subgraph.numNodes()) *
                               dout_bytes;

    sim::Runtime &rt = group_.device(device);
    sim::FaultInjector *fi = group_.faultInjector();
    std::vector<Tensor> outs;
    const auto run_once = [&](std::vector<Tensor> &dst) {
        return runOnStream(rt, stream, [&]() {
            auto scope = rt.memoryScope();
            dst = runBatch(*plan, reqs, device);
        });
    };
    const StreamRunCost run = run_once(outs);
    out.cost.execSec = run.execSec;
    out.cost.overheadSec = run.overheadSec;

    // ASPIS sandwich, same semantics as drain(): scheduled transient
    // corrupts the primary output, a sampled duplicate detects by
    // checksum compare, a detection replays (and the replay is
    // served). All runs serialize on this stream, so their cost folds
    // into the batch's cost the online layer charges.
    const bool hit = fi && fi->armTransient(device);
    const std::uint64_t ord = fi ? fi->batchOrdinal(device) : 0;
    if (hit)
        fi->corruptBatch(outs, device, group_.nowSec());
    if (shouldDuplicate()) {
        if (fi)
            fi->noteDuplicate(device, group_.nowSec(), ord);
        std::vector<Tensor> dup;
        const StreamRunCost r2 = run_once(dup);
        out.cost.execSec += r2.execSec;
        out.cost.overheadSec += r2.overheadSec;
        const std::uint64_t lhs = tensor::checksum(outs);
        const std::uint64_t rhs = tensor::checksum(dup);
        if (lhs != rhs) {
            if (fi)
                fi->noteDetection(device, group_.nowSec(), ord, lhs,
                                  rhs);
            const StreamRunCost r3 = run_once(outs);
            out.cost.execSec += r3.execSec;
            out.cost.overheadSec += r3.overheadSec;
            if (fi)
                fi->noteReplay(device, group_.nowSec(), "transient");
            if (flight_)
                for (const Request *r : reqs)
                    flight_->event(r->id, "replay", group_.nowSec(),
                                   device, "why=transient");
        }
    } else if (hit) {
        fi->noteEscape(device, group_.nowSec(), ord);
    }
    {
        tensor::TrackerScope untracked(nullptr);
        for (std::size_t i = 0; i < n; ++i)
            results_.insert_or_assign(q[i].id, outs[i].clone());
    }

    // Rebase this device's transfer bookkeeping exactly like
    // ServingSession::serveOldest: the served requests' cumulative
    // transfer time leaves this submit epoch with them, so a later
    // drain() only charges the transfers of the requests it actually
    // serves. submitSec is non-decreasing along the queue, so the
    // remaining entries stay non-negative.
    const double served_host_sec = q[n - 1].submitSec;
    q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(n));
    double &pending = pendingHostSec_[static_cast<std::size_t>(device)];
    pending = std::max(0.0, pending - served_host_sec);
    for (Request &r : q)
        r.submitSec = std::max(0.0, r.submitSec - served_host_sec);
    return out;
}

std::vector<std::uint64_t>
ShardedSession::dropOldestOn(int device, std::size_t n)
{
    if (device < 0 || device >= group_.size())
        throw std::runtime_error("ShardedSession: device out of range");
    auto &q = queues_[static_cast<std::size_t>(device)];
    n = std::min(n, q.size());
    std::vector<std::uint64_t> ids;
    if (n == 0)
        return ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        ids.push_back(q[i].id);
    // Rebase exactly like serveOldestOn: the cancelled requests'
    // submit transfers already happened and leave with them.
    const double served_host_sec = q[n - 1].submitSec;
    q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(n));
    double &pending = pendingHostSec_[static_cast<std::size_t>(device)];
    pending = std::max(0.0, pending - served_host_sec);
    for (Request &r : q)
        r.submitSec = std::max(0.0, r.submitSec - served_host_sec);
    return ids;
}

bool
ShardedSession::dropQueued(std::uint64_t id)
{
    for (auto &q : queues_)
        for (auto it = q.begin(); it != q.end(); ++it)
            if (it->id == id) {
                q.erase(it);
                return true;
            }
    return false;
}

ShardBatch
ShardedSession::hedgeOldestOn(int from, int to, int stream)
{
    if (from < 0 || from >= group_.size() || to < 0 ||
        to >= group_.size())
        throw std::runtime_error("ShardedSession: device out of range");
    if (dead_[static_cast<std::size_t>(to)])
        throw std::runtime_error(
            "ShardedSession::hedgeOldestOn: backup device is "
            "quarantined");
    ShardBatch out;
    out.device = to;
    auto &q = queues_[static_cast<std::size_t>(from)];
    if (q.empty())
        return out;
    Request &head = q.front();
    out.cost.requests = 1;
    out.cost.servedIds.push_back(head.id);
    if (flight_)
        flight_->event(head.id, "hedge-exec", group_.nowSec(), to,
                       "from=" + std::to_string(from) +
                           " stream=" + std::to_string(stream));

    const auto plan = compiledPlan();
    std::vector<const Request *> reqs{&head};

    // The backup copy's subgraph structure re-sends over the backup
    // device's PCIe lanes (the primary's resident copy is elsewhere),
    // like a quarantine re-route; charged as batch overhead, not as a
    // queued submit — the hedge never joins a queue.
    sim::Runtime &rt = group_.device(to);
    const double transfer = graph::hostTransferSec(
        static_cast<double>(head.mb.subgraph.structureBytes()),
        rt.spec());
    rt.hostOverhead(transfer);

    out.haloBytesByOwner =
        batchHaloBytes(reqs, to, &out.hostFallbackBytes);
    if (to != 0)
        out.gatherBytes += static_cast<double>(
                               head.mb.subgraph.numNodes()) *
                           static_cast<double>(cfg_.serving.dout) *
                           sizeof(float);

    std::vector<Tensor> outs;
    const StreamRunCost run = runOnStream(rt, stream, [&]() {
        auto scope = rt.memoryScope();
        outs = runBatch(*plan, reqs, to);
    });
    out.cost.execSec = run.execSec;
    out.cost.overheadSec = run.overheadSec + transfer;
    // No ASPIS sandwich and no result store: the hedge IS the backup
    // path, and the primary copy stays authoritative for outputs.
    return out;
}

const Tensor *
ShardedSession::result(std::uint64_t id) const
{
    auto it = results_.find(id);
    return it == results_.end() ? nullptr : &it->second;
}

} // namespace hector::serve
