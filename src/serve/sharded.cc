#include "serve/sharded.hh"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "core/frontend.hh"
#include "obs/trace.hh"

namespace hector::serve
{

using tensor::Tensor;

ShardedSession::ShardedSession(const graph::HeteroGraph &g,
                               Tensor host_features,
                               std::string model_source, ShardedConfig cfg,
                               sim::DeviceGroup &group)
    : g_(g), hostFeatures_(std::move(host_features)),
      modelSource_(std::move(model_source)), cfg_(cfg), group_(group),
      partition_([&] {
          validateServingConfig(cfg.serving, "ShardedSession");
          graph::PartitionSpec ps = cfg.partition;
          ps.numShards = group.size();
          return graph::partitionGraph(g, ps);
      }()),
      cache_(cfg.serving.planBudgetBytes),
      compiler_(g, "default", cfg.serving,
                cfg.serving.autotuneSchedules),
      rng_(cfg.serving.seed),
      execCtxs_(static_cast<std::size_t>(group.size())),
      execGrads_(static_cast<std::size_t>(group.size())),
      queues_(static_cast<std::size_t>(group.size())),
      pendingHostSec_(static_cast<std::size_t>(group.size()), 0.0)
{
    if (hostFeatures_.dim(1) != cfg_.serving.din)
        throw std::runtime_error(
            "ShardedSession: host feature dim != config din");
    // Same seeding order as ServingSession / the engine registry:
    // weights are drawn from the pristine program *before* any
    // sampling, so the single-device and sharded sessions consume
    // identical RNG streams (initVariantWeights is the one
    // construction path for per-variant weights).
    weights_ = initVariantWeights(modelSource_, cfg_.serving.din,
                                  cfg_.serving.dout, g_, rng_);

    // Replicate the weights: one broadcast from the all-gather root to
    // every other device over the interconnect, paid once per session.
    double weight_bytes = 0.0;
    for (const auto &[name, w] : weights_)
        weight_bytes += static_cast<double>(w.bytes());
    for (int d = 1; d < group_.size(); ++d)
        group_.interconnect().transfer(0, d, weight_bytes,
                                       group_.nowSec());

    // Load the sharded feature store: each device bulk-transfers its
    // own shard's feature rows over its own PCIe lanes, paid once per
    // session (the rows stay resident; requests only move structure).
    const double row_bytes =
        static_cast<double>(cfg_.serving.din) * sizeof(float);
    for (int d = 0; d < group_.size(); ++d) {
        sim::Runtime &rt = group_.device(d);
        rt.hostOverhead(graph::hostTransferSec(
            static_cast<double>(
                partition_.shardSizes[static_cast<std::size_t>(d)]) *
                row_bytes,
            rt.spec()));
    }
}

std::shared_ptr<const core::CompiledModel>
ShardedSession::compiledPlan()
{
    // One lookup per cycle/batch through the shared PlanCompiler
    // (autotuned schedule, modeled plan cost); plan-lifecycle events
    // are recorded against the all-gather root's runtime.
    const PlanKey key =
        makePlanKey(modelSource_, cfg_.serving.din, cfg_.serving.dout,
                    cfg_.serving.compile, g_);
    // Timestamp the cache's trace instants with the group clock (the
    // cache itself holds no runtime reference).
    obs::setVirtualNow(group_.nowSec());
    const PlanCache::Stats before = cache_.stats();
    auto plan = cache_.get(key, [&]() {
        return compiler_.compile(key, hostFeatures_, weights_);
    });
    recordPlanEvents(group_.device(0).planEvents(), before,
                     cache_.stats());
    return plan;
}

int
ShardedSession::homeShard(const graph::Minibatch &mb) const
{
    // Affinity x headroom routing. Placement cannot change any output
    // bit (per-request arithmetic is batch- and device-invariant), so
    // the router trades the two things placement *does* change: halo
    // bytes (maximized ownership -> minimized cut traffic) and load
    // balance (hub shards would otherwise swallow most neighborhoods
    // — the plurality owner alone routes ~40% of bgs requests to one
    // device). Scoring owned_vertices x queue_headroom with a hard
    // per-device queue cap keeps both bounded, deterministically; by
    // pigeonhole some shard is always below the cap.
    const std::int64_t k = group_.size();
    std::vector<std::int64_t> owned(static_cast<std::size_t>(k), 0);
    for (std::int64_t v : mb.nodeMap)
        ++owned[static_cast<std::size_t>(
            partition_.shardOf[static_cast<std::size_t>(v)])];
    const std::int64_t total =
        static_cast<std::int64_t>(queued()) + 1;
    const std::int64_t cap = (total + k - 1) / k + 1;
    int best = -1;
    std::int64_t best_score = -1;
    for (int s = 0; s < k; ++s) {
        const std::int64_t load = static_cast<std::int64_t>(
            queues_[static_cast<std::size_t>(s)].size());
        const std::int64_t headroom = cap - load;
        if (headroom <= 0)
            continue;
        const std::int64_t score =
            (owned[static_cast<std::size_t>(s)] + 1) * headroom;
        if (score > best_score) {
            best = s;
            best_score = score;
        }
    }
    return best < 0 ? 0 : best;
}

ShardedSession::SubmitInfo
ShardedSession::enqueue(int home, graph::Minibatch mb, Tensor feature,
                        double submit_sec)
{
    SubmitInfo info;
    info.id = nextId_++;
    info.device = home;
    auto &q = queues_[static_cast<std::size_t>(home)];
    q.emplace_back(info.id, std::move(mb), std::move(feature));
    q.back().submitSec = submit_sec;
    if (flight_)
        flight_->event(info.id, "enqueue", group_.nowSec(), home,
                       "home=" + std::to_string(home));
    if (obs::enabled())
        obs::tracer().instant("submit", "serve", group_.nowSec(), home,
                              0,
                              "\"home\":" + std::to_string(home));
    return info;
}

ShardedSession::SubmitInfo
ShardedSession::submitRouted()
{
    // Sample first (advancing the shared request stream), then route.
    // With the feature store device-resident, PCIe only carries the
    // subgraph structure; the gathered feature tensor is the batch
    // assembly's working set (its kernel cost is charged by
    // coalesce()), not a host transfer.
    graph::Minibatch mb =
        graph::sampleNeighbors(g_, cfg_.serving.sample, rng_);
    const int home = homeShard(mb);
    sim::Runtime &rt = group_.device(home);
    Tensor feature;
    {
        auto scope = rt.memoryScope();
        feature = graph::gatherFeatures(mb, hostFeatures_);
    }
    const double transfer = graph::hostTransferSec(
        static_cast<double>(mb.subgraph.structureBytes()), rt.spec());
    rt.hostOverhead(transfer);
    pendingHostSec_[static_cast<std::size_t>(home)] += transfer;
    SubmitInfo info = enqueue(
        home, std::move(mb), std::move(feature),
        pendingHostSec_[static_cast<std::size_t>(home)]);
    info.transferSec = transfer;
    return info;
}

ShardedSession::SubmitInfo
ShardedSession::submitRouted(graph::Minibatch mb, Tensor feature)
{
    if (feature.ndim() != 2 ||
        feature.dim(0) != mb.subgraph.numNodes() ||
        feature.dim(1) != cfg_.serving.din)
        throw std::runtime_error(
            "ShardedSession::submitRouted: feature must be [subgraph "
            "nodes, din]");
    const int home = homeShard(mb);
    return enqueue(
        home, std::move(mb), std::move(feature),
        pendingHostSec_[static_cast<std::size_t>(home)]);
}

std::size_t
ShardedSession::queued() const
{
    std::size_t n = 0;
    for (const auto &q : queues_)
        n += q.size();
    return n;
}

std::size_t
ShardedSession::queuedOn(int device) const
{
    if (device < 0 || device >= group_.size())
        throw std::runtime_error("ShardedSession: device out of range");
    return queues_[static_cast<std::size_t>(device)].size();
}

std::vector<std::pair<int, double>>
ShardedSession::batchHaloBytes(const std::vector<const Request *> &reqs,
                               int home) const
{
    // Unique full-graph vertices across the batch (the union gather
    // deduplicates them), grouped by owner shard. Each non-home row
    // crosses the owner -> home link once.
    const double row_bytes =
        static_cast<double>(cfg_.serving.din) * sizeof(float);
    std::unordered_set<std::int64_t> seen;
    std::vector<double> per_owner(
        static_cast<std::size_t>(group_.size()), 0.0);
    for (const Request *r : reqs)
        for (std::int64_t v : r->mb.nodeMap)
            if (seen.insert(v).second) {
                const std::int32_t owner =
                    partition_.shardOf[static_cast<std::size_t>(v)];
                if (owner != home)
                    per_owner[static_cast<std::size_t>(owner)] +=
                        row_bytes;
            }
    std::vector<std::pair<int, double>> halo;
    for (int s = 0; s < group_.size(); ++s)
        if (per_owner[static_cast<std::size_t>(s)] > 0.0)
            halo.emplace_back(s, per_owner[static_cast<std::size_t>(s)]);
    return halo;
}

ShardedReport
ShardedSession::drain()
{
    ShardedReport report;
    report.devices = group_.size();
    report.perDeviceRequests.assign(
        static_cast<std::size_t>(group_.size()), 0);
    report.cutEdges = partition_.cutEdges;
    report.cutRatio = partition_.cutRatio();
    if (queued() == 0)
        return report;

    results_.clear();

    const std::uint64_t launches_before = group_.totalLaunches();
    const double ic_busy_before = group_.interconnect().totalBusySec();

    const auto plan = compiledPlan();

    // Cycle timeline on the shared clock: each device's queued
    // structure transfers serialize on its own PCIe lanes (devices
    // overlap), then the device pulls its halo over the interconnect
    // and computes, and every batch's outputs gather onto device 0.
    const double base = group_.nowSec();
    obs::Span drain_span("sharded.drain", "serve", base, 0, 0);

    const std::size_t cap =
        std::max<std::size_t>(1, cfg_.serving.maxBatch);
    const double dout_bytes =
        static_cast<double>(cfg_.serving.dout) * sizeof(float);

    std::vector<double> latencies;
    std::vector<double> queue_delays;
    latencies.reserve(queued());
    queue_delays.reserve(queued());
    double cycle_end = base;
    double halo_bytes = 0.0;
    double gather_bytes = 0.0;

    for (int d = 0; d < group_.size(); ++d) {
        auto &q = queues_[static_cast<std::size_t>(d)];
        if (q.empty())
            continue;
        report.perDeviceRequests[static_cast<std::size_t>(d)] = q.size();
        sim::Runtime &rt = group_.device(d);
        StreamScheduler sched(rt, cfg_.serving.numStreams);
        auto scope = rt.memoryScope();

        const double host_end =
            base + pendingHostSec_[static_cast<std::size_t>(d)];
        cycle_end = std::max(cycle_end, host_end);

        // Halo exchange for everything this device is about to serve,
        // charged per batch on the owner -> home links.
        double comm_done = host_end;
        double device_halo = 0.0;
        std::vector<std::vector<const Request *>> batches;
        for (std::size_t lo = 0; lo < q.size(); lo += cap) {
            const std::size_t hi = std::min(q.size(), lo + cap);
            std::vector<const Request *> reqs;
            reqs.reserve(hi - lo);
            for (std::size_t i = lo; i < hi; ++i)
                reqs.push_back(&q[i]);
            for (const auto &[owner, bytes] : batchHaloBytes(reqs, d)) {
                comm_done = std::max(
                    comm_done, group_.interconnect().transfer(
                                   owner, d, bytes, host_end));
                halo_bytes += bytes;
                device_halo += bytes;
            }
            batches.push_back(std::move(reqs));
        }
        if (obs::enabled() && comm_done > host_end)
            obs::tracer().complete(
                "halo", "comm", host_end, comm_done - host_end, d, 0,
                "\"bytes\":" + obs::jsonNum(device_halo));

        // Compute: this device's own driver thread and streams, on the
        // shared overlap rule, starting once the halo is resident.
        for (const auto &reqs : batches) {
            sched.run([&]() {
                MicroBatch batch = coalesce(reqs, rt);
                std::vector<Tensor> outs = executeBatch(
                    *plan, batch, weights_, rt,
                    execCtxs_[static_cast<std::size_t>(d)],
                    execGrads_[static_cast<std::size_t>(d)],
                    cfg_.serving.useArena);
                tensor::TrackerScope untracked(nullptr);
                for (std::size_t i = 0; i < reqs.size(); ++i)
                    results_.insert_or_assign(reqs[i]->id,
                                              outs[i].clone());
            });
        }

        const std::vector<double> completions = sched.completionTimes();
        std::size_t req_idx = 0;
        for (std::size_t b = 0; b < batches.size(); ++b) {
            const double compute_done = comm_done + completions[b];
            // All-gather this batch's outputs onto device 0.
            double out_bytes = 0.0;
            for (const Request *r : batches[b])
                out_bytes += static_cast<double>(
                                 r->mb.subgraph.numNodes()) *
                             dout_bytes;
            double final_done = compute_done;
            if (d != 0) {
                final_done = group_.interconnect().transfer(
                    d, 0, out_bytes, compute_done);
                gather_bytes += out_bytes;
            }
            cycle_end = std::max(cycle_end, final_done);

            const ScheduledBatch &sb = sched.batches()[b];
            const double service = sb.overheadSec + sb.execSec;
            const double exec_start = compute_done - sb.execSec;
            if (obs::enabled()) {
                obs::tracer().complete(
                    "batch", "serve", exec_start, sb.execSec, d,
                    sb.stream,
                    "\"requests\":" +
                        std::to_string(batches[b].size()));
                if (d != 0)
                    obs::tracer().complete(
                        "gather", "comm", compute_done,
                        final_done - compute_done, d, sb.stream,
                        "\"bytes\":" + obs::jsonNum(out_bytes));
            }
            for (std::size_t i = 0; i < batches[b].size();
                 ++i, ++req_idx) {
                const double lat =
                    final_done - (base + q[req_idx].submitSec);
                latencies.push_back(lat);
                queue_delays.push_back(std::max(0.0, lat - service));
                if (flight_) {
                    const std::uint64_t id = q[req_idx].id;
                    flight_->event(id, "batch-join", host_end, d,
                                   "batch=" + std::to_string(b) +
                                       " size=" +
                                       std::to_string(
                                           batches[b].size()));
                    if (comm_done > host_end)
                        flight_->event(
                            id, "halo", comm_done, d,
                            "bytes=" + obs::jsonNum(device_halo));
                    flight_->event(id, "exec-start", exec_start, d,
                                   "stream=" +
                                       std::to_string(sb.stream));
                    if (d != 0)
                        flight_->event(
                            id, "all-gather", final_done, d,
                            "bytes=" + obs::jsonNum(out_bytes));
                    flight_->event(
                        id, "completion", final_done, d,
                        "latency_ms=" + obs::jsonNum(lat * 1e3));
                }
            }
            report.batches += 1;
        }
        report.requests += q.size();
    }

    group_.advanceTo(cycle_end);

    drain_span.arg("requests",
                   static_cast<std::uint64_t>(report.requests));
    drain_span.arg("devices", static_cast<std::uint64_t>(
                                  static_cast<unsigned>(group_.size())));
    drain_span.endAt(cycle_end);

    const double makespan_sec = cycle_end - base;
    report.makespanMs = makespan_sec * 1e3;
    report.throughputReqPerSec =
        makespan_sec > 0.0
            ? static_cast<double>(report.requests) / makespan_sec
            : 0.0;
    report.msPerRequest =
        report.requests
            ? report.makespanMs / static_cast<double>(report.requests)
            : 0.0;

    fillLatencyStats(report, latencies, queue_delays,
                     cfg_.serving.deadlineMs);

    report.haloBytes = halo_bytes;
    report.gatherBytes = gather_bytes;
    report.interconnectMs =
        (group_.interconnect().totalBusySec() - ic_busy_before) * 1e3;
    fillCacheStats(report, cache_.stats());
    report.launches = group_.totalLaunches() - launches_before;

    for (auto &q : queues_)
        q.clear();
    std::fill(pendingHostSec_.begin(), pendingHostSec_.end(), 0.0);
    return report;
}

ShardBatch
ShardedSession::serveOldestOn(int device, std::size_t n, int stream)
{
    if (device < 0 || device >= group_.size())
        throw std::runtime_error("ShardedSession: device out of range");
    ShardBatch out;
    out.device = device;
    auto &q = queues_[static_cast<std::size_t>(device)];
    n = std::min(n, q.size());
    if (n == 0)
        return out;
    out.cost.requests = n;
    out.cost.servedIds.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.cost.servedIds.push_back(q[i].id);
    if (flight_)
        for (std::size_t i = 0; i < n; ++i)
            flight_->event(q[i].id, "batch-join", group_.nowSec(),
                           device,
                           "size=" + std::to_string(n) +
                               " stream=" + std::to_string(stream));

    const auto plan = compiledPlan();

    std::vector<const Request *> reqs;
    reqs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        reqs.push_back(&q[i]);
    out.haloBytesByOwner = batchHaloBytes(reqs, device);
    const double dout_bytes =
        static_cast<double>(cfg_.serving.dout) * sizeof(float);
    if (device != 0)
        for (const Request *r : reqs)
            out.gatherBytes += static_cast<double>(
                                   r->mb.subgraph.numNodes()) *
                               dout_bytes;

    sim::Runtime &rt = group_.device(device);
    const StreamRunCost run = runOnStream(rt, stream, [&]() {
        auto scope = rt.memoryScope();
        MicroBatch batch = coalesce(reqs, rt);
        std::vector<Tensor> outs = executeBatch(
            *plan, batch, weights_, rt,
            execCtxs_[static_cast<std::size_t>(device)],
            execGrads_[static_cast<std::size_t>(device)],
            cfg_.serving.useArena);
        tensor::TrackerScope untracked(nullptr);
        for (std::size_t i = 0; i < n; ++i)
            results_.insert_or_assign(q[i].id, outs[i].clone());
    });
    out.cost.execSec = run.execSec;
    out.cost.overheadSec = run.overheadSec;

    // Rebase this device's transfer bookkeeping exactly like
    // ServingSession::serveOldest: the served requests' cumulative
    // transfer time leaves this submit epoch with them, so a later
    // drain() only charges the transfers of the requests it actually
    // serves. submitSec is non-decreasing along the queue, so the
    // remaining entries stay non-negative.
    const double served_host_sec = q[n - 1].submitSec;
    q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(n));
    double &pending = pendingHostSec_[static_cast<std::size_t>(device)];
    pending = std::max(0.0, pending - served_host_sec);
    for (Request &r : q)
        r.submitSec = std::max(0.0, r.submitSec - served_host_sec);
    return out;
}

const Tensor *
ShardedSession::result(std::uint64_t id) const
{
    auto it = results_.find(id);
    return it == results_.end() ? nullptr : &it->second;
}

} // namespace hector::serve
