#include "serve/online.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <set>
#include <stdexcept>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"

namespace hector::serve
{

// ------------------------------------------------------------ LoadGenerator

LoadGenerator::LoadGenerator(double rate_per_sec, std::size_t count,
                             std::uint64_t seed)
    : ratePerSec_(rate_per_sec), left_(count), rng_(seed)
{
    if (rate_per_sec <= 0.0)
        throw std::runtime_error("LoadGenerator: rate must be positive");
    if (left_ > 0)
        advance();
}

void
LoadGenerator::advance()
{
    // Inverse-CDF exponential over the raw 64-bit stream instead of
    // std::exponential_distribution: the gap sequence is bit-stable
    // across standard libraries, and u is rate-independent, so equal
    // seeds give arrival times that scale exactly by 1/rate.
    const double u =
        (static_cast<double>(rng_() >> 11) + 0.5) *
        (1.0 / 9007199254740992.0); // 2^-53, u in (0, 1)
    nextSec_ += -std::log(1.0 - u) / ratePerSec_;
}

double
LoadGenerator::peekSec() const
{
    if (done())
        throw std::runtime_error("LoadGenerator: exhausted");
    return nextSec_;
}

double
LoadGenerator::next()
{
    const double t = peekSec();
    --left_;
    if (left_ > 0)
        advance();
    return t;
}

std::vector<double>
LoadGenerator::arrivals(double rate_per_sec, std::size_t count,
                        std::uint64_t seed)
{
    LoadGenerator gen(rate_per_sec, count, seed);
    std::vector<double> times;
    times.reserve(count);
    while (!gen.done())
        times.push_back(gen.next());
    return times;
}

// ---------------------------------------------------------- AdaptiveBatcher

AdaptiveBatcher::AdaptiveBatcher(std::size_t max_batch, double deadline_sec,
                                 double alpha, double budget_fraction)
    : maxBatch_(std::max<std::size_t>(1, max_batch)),
      deadlineSec_(deadline_sec), alpha_(alpha),
      budgetFraction_(budget_fraction)
{
    if (alpha_ <= 0.0 || alpha_ > 1.0)
        throw std::runtime_error("AdaptiveBatcher: alpha must be in (0, 1]");
}

std::size_t
AdaptiveBatcher::pick(std::size_t queue_depth) const
{
    if (queue_depth == 0)
        return 0;
    // Saturation: the queue alone fills a maximal batch, so amortizing
    // launches over maxBatch requests is the throughput-optimal (and
    // deadline-agnostic — they are blown either way) choice.
    if (queue_depth >= maxBatch_)
        return maxBatch_;
    // Otherwise serve everything queued now; waiting to fill the batch
    // only adds fill-wait latency in an open loop.
    std::size_t b = queue_depth;
    // ... unless the cost model predicts the batch itself would eat
    // the queued requests' SLO headroom: cap so modeled service time
    // (EWMA overhead + b * EWMA per-request exec) stays within the
    // deadline budget.
    if (observed_ && deadlineSec_ > 0.0 && ewmaExecPerReqSec_ > 0.0) {
        const double budget =
            budgetFraction_ * deadlineSec_ - ewmaOverheadSec_;
        const std::size_t cap =
            budget <= ewmaExecPerReqSec_
                ? 1
                : static_cast<std::size_t>(budget / ewmaExecPerReqSec_);
        b = std::min(b, std::max<std::size_t>(1, cap));
    }
    return std::min(b, maxBatch_);
}

void
AdaptiveBatcher::observe(const BatchCost &cost)
{
    if (cost.requests == 0)
        return;
    const double per_req =
        cost.execSec / static_cast<double>(cost.requests);
    if (!observed_) {
        ewmaOverheadSec_ = cost.overheadSec;
        ewmaExecPerReqSec_ = per_req;
        observed_ = true;
        return;
    }
    ewmaOverheadSec_ += alpha_ * (cost.overheadSec - ewmaOverheadSec_);
    ewmaExecPerReqSec_ += alpha_ * (per_req - ewmaExecPerReqSec_);
}

// ------------------------------------------------------------- OnlineServer

namespace
{

/**
 * Shared finalization tail of runSingle()/runSharded(): rate and
 * batch-size metrics, then the per-request latency statistics via
 * fillLatencyStats so the drain and online paths cannot drift.
 */
void
finalizeOnlineReport(OnlineReport &rep, std::size_t served,
                     double last_completion_sec,
                     const std::vector<double> &latencies_sec,
                     const std::vector<double> &queue_delays_sec,
                     double deadline_ms)
{
    rep.requests = served;
    rep.batches = rep.ticks;
    rep.makespanMs = last_completion_sec * 1e3;
    rep.throughputReqPerSec =
        last_completion_sec > 0.0
            ? static_cast<double>(served) / last_completion_sec
            : 0.0;
    rep.msPerRequest =
        served ? rep.makespanMs / static_cast<double>(served) : 0.0;
    rep.meanBatchSize =
        rep.ticks ? static_cast<double>(served) /
                        static_cast<double>(rep.ticks)
                  : 0.0;
    fillLatencyStats(rep, latencies_sec, queue_delays_sec, deadline_ms);
}

/**
 * Single-device open-loop clocks, shared by runSingle() and
 * runMulti() so the single- and multi-tenant tick machinery cannot
 * drift: one host thread admits arrivals and issues launches
 * (hostFree), each stream runs one batch at a time (streamFree), and
 * the serialized fraction of every kernel occupies a device-wide
 * shared resource (contendFree) — Runtime::makespanSec's overlap
 * rule, applied per batch.
 */
/** Arrival time and request id of one queued arrival (FIFO entries of
 *  the tick loops; the id attributes flight-recorder lifecycle events
 *  to the engine-assigned request). */
struct QueuedArrival
{
    double arrivalSec = 0.0;
    std::uint64_t id = 0;
};

struct OpenLoopClock
{
    std::vector<double> streamFree;
    double hostFree = 0.0;
    double contendFree = 0.0;
    double serialFrac = 0.0;

    OpenLoopClock(int num_streams, double serial_frac)
        : streamFree(static_cast<std::size_t>(num_streams), 0.0),
          serialFrac(serial_frac)
    {}

    /** Least-loaded stream (ties to the lower id). */
    int
    pickStream() const
    {
        int s = 0;
        for (std::size_t i = 1; i < streamFree.size(); ++i)
            if (streamFree[i] < streamFree[static_cast<std::size_t>(s)])
                s = static_cast<int>(i);
        return s;
    }

    struct Issued
    {
        double execStart = 0.0;
        double done = 0.0;
    };

    /** Advance all three clocks for one batch issued to @p stream. */
    Issued
    issue(const BatchCost &cost, int stream)
    {
        const double issue_done = hostFree + cost.overheadSec;
        Issued t;
        t.execStart = std::max(
            issue_done,
            std::max(streamFree[static_cast<std::size_t>(stream)],
                     contendFree));
        t.done = t.execStart + cost.execSec;
        hostFree = issue_done;
        streamFree[static_cast<std::size_t>(stream)] = t.done;
        contendFree = t.execStart + serialFrac * cost.execSec;
        return t;
    }
};

} // namespace

OnlineServer::OnlineServer(const graph::HeteroGraph &g,
                           tensor::Tensor host_features,
                           std::string model_source, OnlineConfig cfg,
                           sim::Runtime &rt)
    : cfg_(cfg), rt_(&rt),
      session_(std::make_unique<ServingSession>(
          g, std::move(host_features), std::move(model_source),
          cfg.serving, rt)),
      batcher_(std::max<std::size_t>(1, cfg.serving.maxBatch),
               cfg.serving.deadlineMs * 1e-3, cfg.ewmaAlpha,
               cfg.deadlineBudgetFraction)
{}

OnlineServer::OnlineServer(const graph::HeteroGraph &g,
                           tensor::Tensor host_features,
                           std::string model_source, OnlineConfig cfg,
                           sim::DeviceGroup &group)
    : cfg_(cfg), group_(&group),
      batcher_(std::max<std::size_t>(1, cfg.serving.maxBatch),
               cfg.serving.deadlineMs * 1e-3, cfg.ewmaAlpha,
               cfg.deadlineBudgetFraction)
{
    ShardedConfig scfg;
    scfg.serving = cfg.serving;
    scfg.partition = cfg.partition;
    sharded_ = std::make_unique<ShardedSession>(
        g, std::move(host_features), std::move(model_source), scfg,
        group);
}

OnlineServer::OnlineServer(Engine &engine, OnlineConfig cfg)
    : cfg_(cfg), engine_(&engine),
      batcher_(std::max<std::size_t>(1, cfg.serving.maxBatch),
               cfg.serving.deadlineMs * 1e-3, cfg.ewmaAlpha,
               cfg.deadlineBudgetFraction)
{
    if (cfg_.variants.empty())
        throw std::invalid_argument(
            "OnlineServer: multi-tenant mode needs at least one "
            "VariantLoad");
    std::set<std::string> seen;
    for (const VariantLoad &load : cfg_.variants) {
        if (engine.variantIndex(load.variant) < 0)
            throw std::invalid_argument(
                "OnlineServer: unregistered variant '" + load.variant +
                "'");
        if (!seen.insert(load.variant).second)
            throw std::invalid_argument(
                "OnlineServer: duplicate VariantLoad for variant '" +
                load.variant +
                "' (two lanes feeding one FIFO would scramble "
                "per-request latency attribution)");
        if (load.ratePerSec <= 0.0)
            throw std::invalid_argument(
                "OnlineServer: ratePerSec must be > 0 for variant '" +
                load.variant + "'");
    }
}

ServingSession &
OnlineServer::session()
{
    if (!session_)
        throw std::runtime_error(
            "OnlineServer::session: server does not run in "
            "single-device mode");
    return *session_;
}

ShardedSession &
OnlineServer::sharded()
{
    if (!sharded_)
        throw std::runtime_error(
            "OnlineServer::sharded: server does not run in sharded mode");
    return *sharded_;
}

Engine &
OnlineServer::engine()
{
    if (!engine_)
        throw std::runtime_error(
            "OnlineServer::engine: server does not run in multi-tenant "
            "mode");
    return *engine_;
}

void
OnlineServer::setFlightRecorder(obs::FlightRecorder *fr)
{
    flight_ = fr;
    if (engine_)
        engine_->setFlightRecorder(fr);
    if (session_)
        session_->engine().setFlightRecorder(fr);
    if (sharded_)
        sharded_->setFlightRecorder(fr);
}

OnlineReport
OnlineServer::run()
{
    if (engine_)
        return runMulti();
    return sharded_ ? runSharded() : runSingle();
}

OnlineReport
OnlineServer::runSingle()
{
    OnlineReport rep;
    rep.offeredRatePerSec = cfg_.arrivalRatePerSec;
    rep.deadlineMs = cfg_.serving.deadlineMs;
    latenciesMs_.clear();
    queueDelaysMs_.clear();
    batchSizes_.clear();
    if (cfg_.numRequests == 0)
        return rep;

    LoadGenerator gen(cfg_.arrivalRatePerSec, cfg_.numRequests,
                      cfg_.arrivalSeed);

    const int num_streams = std::max(1, cfg_.serving.numStreams);
    const double serial_frac = rt_->spec().streamSerialFraction;
    const std::size_t max_batch =
        std::max<std::size_t>(1, cfg_.serving.maxBatch);
    const std::size_t fixed = std::min(
        max_batch, cfg_.fixedBatch > 0 ? cfg_.fixedBatch : max_batch);

    // Open-loop timeline, per-batch application of the runtime's
    // overlap rule (OpenLoopClock — shared with the multi-tenant
    // loop).
    OpenLoopClock clock(num_streams, serial_frac);

    /** Arrival time and id of each queued request, FIFO like the
     *  session. */
    std::deque<QueuedArrival> queued_arrivals;

    const std::uint64_t launches_before = rt_->counters().total().launches;

    // Admit every arrival the host clock has passed; each pays its
    // modeled host-to-device transfer on the serialized host clock.
    auto admit = [&]() {
        while (!gen.done() && gen.peekSec() <= clock.hostFree) {
            const double arr = gen.next();
            rep.lastArrivalMs = arr * 1e3;
            const double host_before = rt_->hostTimeMs() * 1e-3;
            const std::uint64_t id = session_->submit();
            const double transfer = rt_->hostTimeMs() * 1e-3 - host_before;
            clock.hostFree = std::max(clock.hostFree, arr) + transfer;
            if (flight_) {
                flight_->event(id, "arrival", arr, rt_->deviceId());
                flight_->event(id, "admission", clock.hostFree,
                               rt_->deviceId(),
                               "transfer_ms=" +
                                   obs::jsonNum(transfer * 1e3));
            }
            queued_arrivals.push_back(QueuedArrival{arr, id});
        }
    };

    std::size_t served = 0;
    double last_completion = 0.0;
    std::vector<double> latencies_sec;
    std::vector<double> queue_delays_sec;
    latencies_sec.reserve(cfg_.numRequests);
    queue_delays_sec.reserve(cfg_.numRequests);

    while (served < cfg_.numRequests) {
        admit();
        if (queued_arrivals.empty()) {
            // Idle: jump the host clock to the next arrival.
            clock.hostFree = std::max(clock.hostFree, gen.peekSec());
            rt_->advanceTo(clock.hostFree);
            continue;
        }

        const std::size_t depth = queued_arrivals.size();
        rep.peakQueueDepth = std::max(rep.peakQueueDepth, depth);

        std::size_t batch;
        if (cfg_.adaptive) {
            batch = batcher_.pick(depth);
        } else if (depth >= fixed || gen.done()) {
            batch = std::min(depth, fixed);
        } else {
            // Wait-to-fill: hold the queue until the fixed batch is
            // complete (or arrivals run out).
            clock.hostFree = std::max(clock.hostFree, gen.peekSec());
            rt_->advanceTo(clock.hostFree);
            continue;
        }
        batch = std::max<std::size_t>(1, std::min(batch, depth));

        if (!cfg_.retainResults)
            session_->clearResults();

        const int s = clock.pickStream();
        const BatchCost cost = session_->serveOldest(batch, s);
        const OpenLoopClock::Issued t = clock.issue(cost, s);
        rt_->advanceTo(t.done);

        if (obs::enabled())
            obs::tracer().complete(
                "tick", "online", t.execStart, cost.execSec,
                rt_->deviceId(), s,
                "\"batch\":" + std::to_string(batch));

        batcher_.observe(cost);
        batchSizes_.push_back(batch);
        ++rep.ticks;

        for (std::size_t i = 0; i < batch; ++i) {
            const QueuedArrival req = queued_arrivals.front();
            queued_arrivals.pop_front();
            const double lat = t.done - req.arrivalSec;
            const double delay =
                std::max(0.0, t.execStart - req.arrivalSec);
            latencies_sec.push_back(lat);
            queue_delays_sec.push_back(delay);
            latenciesMs_.push_back(lat * 1e3);
            queueDelaysMs_.push_back(delay * 1e3);
            if (flight_) {
                flight_->event(req.id, "exec-start", t.execStart,
                               rt_->deviceId(),
                               "stream=" + std::to_string(s));
                flight_->event(req.id, "completion", t.done,
                               rt_->deviceId(),
                               "latency_ms=" + obs::jsonNum(lat * 1e3));
            }
            if (obs::enabled())
                obs::metrics()
                    .histogram("online.latency_ms")
                    .observe(lat * 1e3);
        }
        served += batch;
        last_completion = std::max(last_completion, t.done);
    }

    finalizeOnlineReport(rep, served, last_completion, latencies_sec,
                         queue_delays_sec, cfg_.serving.deadlineMs);

    fillCacheStats(rep, session_->planCache().stats());
    rep.launches = rt_->counters().total().launches - launches_before;
    return rep;
}

OnlineReport
OnlineServer::runMulti()
{
    sim::Runtime &rt = engine_->runtime();
    OnlineReport rep;
    rep.deadlineMs = 0.0;
    latenciesMs_.clear();
    queueDelaysMs_.clear();
    batchSizes_.clear();

    /** One open-loop arrival process + queue + batcher per variant. */
    struct Lane
    {
        int variant;
        std::string name;
        LoadGenerator gen;
        std::deque<QueuedArrival> queued;
        AdaptiveBatcher batcher;
        double deadlineSec;
        std::size_t fixed;
        std::vector<double> latencies; ///< seconds, completion order
        std::size_t met = 0;

        Lane(int v, const VariantLoad &load, const ServingConfig &cfg,
             double alpha, double budget_fraction)
            : variant(v), name(load.variant),
              gen(load.ratePerSec, load.numRequests, load.arrivalSeed),
              batcher(std::max<std::size_t>(1, cfg.maxBatch),
                      cfg.deadlineMs * 1e-3, alpha, budget_fraction),
              deadlineSec(cfg.deadlineMs * 1e-3),
              fixed(std::max<std::size_t>(1, cfg.maxBatch))
        {}
    };

    std::vector<Lane> lanes;
    lanes.reserve(cfg_.variants.size());
    std::size_t total = 0;
    for (const VariantLoad &load : cfg_.variants) {
        const int v = engine_->variantIndex(load.variant);
        const ServingConfig &vcfg = engine_->variantConfig(v);
        lanes.emplace_back(v, load, vcfg, cfg_.ewmaAlpha,
                           cfg_.deadlineBudgetFraction);
        if (cfg_.fixedBatch > 0)
            lanes.back().fixed =
                std::min(lanes.back().fixed, cfg_.fixedBatch);
        rep.offeredRatePerSec += load.ratePerSec;
        rep.deadlineMs = std::max(rep.deadlineMs, vcfg.deadlineMs);
        total += load.numRequests;
    }
    if (total == 0)
        return rep;

    const int num_streams = std::max(1, engine_->config().numStreams);
    const double serial_frac = rt.spec().streamSerialFraction;

    // The single-device overlap rule of runSingle, shared through
    // OpenLoopClock and applied across lanes.
    OpenLoopClock clock(num_streams, serial_frac);

    const std::uint64_t launches_before = rt.counters().total().launches;

    // Admit every arrival the host clock has passed, across lanes in
    // global time order; each pays its modeled transfer on the
    // serialized host clock.
    auto admit = [&]() {
        while (true) {
            Lane *next = nullptr;
            for (Lane &ln : lanes)
                if (!ln.gen.done() &&
                    ln.gen.peekSec() <= clock.hostFree &&
                    (!next || ln.gen.peekSec() < next->gen.peekSec()))
                    next = &ln;
            if (!next)
                break;
            const double arr = next->gen.next();
            rep.lastArrivalMs = std::max(rep.lastArrivalMs, arr * 1e3);
            const double host_before = rt.hostTimeMs() * 1e-3;
            const std::uint64_t id = engine_->submit(next->variant);
            const double transfer = rt.hostTimeMs() * 1e-3 - host_before;
            clock.hostFree = std::max(clock.hostFree, arr) + transfer;
            if (flight_) {
                flight_->event(id, "arrival", arr, rt.deviceId(),
                               "variant=" + next->name);
                flight_->event(id, "admission", clock.hostFree,
                               rt.deviceId(),
                               "transfer_ms=" +
                                   obs::jsonNum(transfer * 1e3));
            }
            next->queued.push_back(QueuedArrival{arr, id});
        }
    };

    /** Earliest pending arrival across lanes; +inf when exhausted. */
    auto next_arrival = [&]() {
        double t = std::numeric_limits<double>::infinity();
        for (Lane &ln : lanes)
            if (!ln.gen.done())
                t = std::min(t, ln.gen.peekSec());
        return t;
    };

    // Deadline-aware variant interleaving: among lanes with queued
    // work, the head-of-line request with the earliest ABSOLUTE
    // deadline (arrival + its variant's SLO) wins the tick —
    // earliest-deadline-first across tenants. Lanes without a deadline
    // rank behind every deadline lane and compete on arrival order;
    // ties go to the lower lane index, keeping the schedule
    // deterministic.
    auto pick_lane = [&](bool require_fill) -> Lane * {
        Lane *best = nullptr;
        double best_key = 0.0;
        double best_arr = 0.0;
        for (Lane &ln : lanes) {
            if (ln.queued.empty())
                continue;
            if (require_fill && ln.queued.size() < ln.fixed &&
                !ln.gen.done())
                continue;
            const double arr = ln.queued.front().arrivalSec;
            const double key =
                ln.deadlineSec > 0.0
                    ? arr + ln.deadlineSec
                    : std::numeric_limits<double>::infinity();
            if (!best || key < best_key ||
                (key == best_key && arr < best_arr)) {
                best = &ln;
                best_key = key;
                best_arr = arr;
            }
        }
        return best;
    };

    std::size_t served = 0;
    double last_completion = 0.0;
    std::vector<double> latencies_sec;
    std::vector<double> queue_delays_sec;
    latencies_sec.reserve(total);
    queue_delays_sec.reserve(total);
    bool any_deadline = false;
    std::size_t met = 0;

    while (served < total) {
        admit();
        Lane *lane = pick_lane(!cfg_.adaptive);
        if (!lane) {
            // Idle (or wait-to-fill still filling): jump the host
            // clock to the next arrival.
            clock.hostFree = std::max(clock.hostFree, next_arrival());
            rt.advanceTo(clock.hostFree);
            continue;
        }

        const std::size_t depth = lane->queued.size();
        rep.peakQueueDepth =
            std::max(rep.peakQueueDepth, engine_->queued());

        std::size_t batch = cfg_.adaptive ? lane->batcher.pick(depth)
                                          : std::min(depth, lane->fixed);
        batch = std::max<std::size_t>(1, std::min(batch, depth));

        if (!cfg_.retainResults)
            engine_->clearResults();

        const int s = clock.pickStream();
        const BatchCost cost =
            engine_->serveOldest(lane->variant, batch, s);
        const OpenLoopClock::Issued t = clock.issue(cost, s);
        rt.advanceTo(t.done);

        if (obs::enabled())
            obs::tracer().complete(
                "tick/" + lane->name, "online", t.execStart,
                cost.execSec, rt.deviceId(), s,
                "\"batch\":" + std::to_string(batch));

        lane->batcher.observe(cost);
        batchSizes_.push_back(batch);
        ++rep.ticks;

        if (lane->deadlineSec > 0.0)
            any_deadline = true;
        for (std::size_t i = 0; i < batch; ++i) {
            const QueuedArrival req = lane->queued.front();
            lane->queued.pop_front();
            const double lat = t.done - req.arrivalSec;
            const double delay =
                std::max(0.0, t.execStart - req.arrivalSec);
            latencies_sec.push_back(lat);
            queue_delays_sec.push_back(delay);
            latenciesMs_.push_back(lat * 1e3);
            queueDelaysMs_.push_back(delay * 1e3);
            lane->latencies.push_back(lat);
            if (lane->deadlineSec <= 0.0 || lat <= lane->deadlineSec)
                ++lane->met;
            if (flight_) {
                flight_->event(req.id, "exec-start", t.execStart,
                               rt.deviceId(),
                               "stream=" + std::to_string(s));
                flight_->event(req.id, "completion", t.done,
                               rt.deviceId(),
                               "latency_ms=" + obs::jsonNum(lat * 1e3));
            }
            if (obs::enabled())
                obs::metrics()
                    .histogram("online.latency_ms")
                    .observe(lat * 1e3);
        }
        served += batch;
        last_completion = std::max(last_completion, t.done);
    }

    // Percentiles/means via the shared tail; attainment judges each
    // request against its own variant's deadline.
    finalizeOnlineReport(rep, served, last_completion, latencies_sec,
                         queue_delays_sec, 0.0);
    if (any_deadline && !latencies_sec.empty()) {
        met = 0;
        for (const Lane &ln : lanes)
            met += ln.met;
        rep.sloAttainment = static_cast<double>(met) /
                            static_cast<double>(latencies_sec.size());
    }

    for (Lane &ln : lanes) {
        if (ln.latencies.empty())
            continue;
        rep.perVariant.push_back(makeVariantReport(
            ln.name, ln.latencies, ln.deadlineSec * 1e3));
    }

    fillCacheStats(rep, engine_->planCache().stats());
    rep.launches = rt.counters().total().launches - launches_before;
    return rep;
}

OnlineReport
OnlineServer::runSharded()
{
    OnlineReport rep;
    rep.offeredRatePerSec = cfg_.arrivalRatePerSec;
    rep.deadlineMs = cfg_.serving.deadlineMs;
    rep.devices = group_->size();
    latenciesMs_.clear();
    queueDelaysMs_.clear();
    batchSizes_.clear();
    if (cfg_.numRequests == 0)
        return rep;

    LoadGenerator gen(cfg_.arrivalRatePerSec, cfg_.numRequests,
                      cfg_.arrivalSeed);

    const int devices = group_->size();
    const int num_streams = std::max(1, cfg_.serving.numStreams);
    const double serial_frac =
        group_->device(0).spec().streamSerialFraction;
    const std::size_t max_batch =
        std::max<std::size_t>(1, cfg_.serving.maxBatch);
    const std::size_t fixed = std::min(
        max_batch, cfg_.fixedBatch > 0 ? cfg_.fixedBatch : max_batch);

    // Multi-device open-loop timeline. The shared pieces stay shared:
    // one PCIe link admits arrivals (host_free) and the interconnect
    // serializes per directed link. Per device, an own driver thread
    // issues launches (issue_free), each stream runs one batch at a
    // time (stream_free), and the device's contention floor gates
    // overlapped execution (contend_free) — the same per-batch overlap
    // rule as the single-device loop, instantiated per device.
    std::vector<std::vector<double>> stream_free(
        static_cast<std::size_t>(devices),
        std::vector<double>(static_cast<std::size_t>(num_streams), 0.0));
    std::vector<double> issue_free(static_cast<std::size_t>(devices),
                                   0.0);
    std::vector<double> contend_free(static_cast<std::size_t>(devices),
                                     0.0);
    double host_free = 0.0;

    /** Arrival time and id of each queued request, FIFO per home
     *  device. */
    std::vector<std::deque<QueuedArrival>> queued_arrivals(
        static_cast<std::size_t>(devices));

    const std::uint64_t launches_before = group_->totalLaunches();
    const double ic_busy_before =
        group_->interconnect().totalBusySec();

    // Admit arrivals the simulation has reached. Unlike the
    // single-device loop — whose one host thread both admits and
    // issues, so admission stalls behind issue overheads — the group's
    // admission thread is free while devices execute: anything that
    // arrived by the group clock (advanced to each batch completion)
    // is admitted, which is what lets queue depth build under load and
    // the adaptive batcher actually batch.
    auto admit = [&]() {
        while (!gen.done() &&
               gen.peekSec() <= std::max(host_free, group_->nowSec())) {
            const double arr = gen.next();
            rep.lastArrivalMs = arr * 1e3;
            const ShardedSession::SubmitInfo info =
                sharded_->submitRouted();
            host_free = std::max(host_free, arr) + info.transferSec;
            if (flight_) {
                flight_->event(info.id, "arrival", arr, info.device);
                flight_->event(
                    info.id, "admission", host_free, info.device,
                    "transfer_ms=" +
                        obs::jsonNum(info.transferSec * 1e3));
            }
            queued_arrivals[static_cast<std::size_t>(info.device)]
                .push_back(QueuedArrival{arr, info.id});
        }
    };

    // Scheduled device failures fire against the open-loop clock: the
    // session quarantines the device and re-routes its queue (charging
    // the structure re-sends on the admission thread), and this loop's
    // per-device arrival deque mirrors the move — the session's
    // re-route order IS the deque order, both FIFO by admission.
    sim::FaultInjector *fi = group_->faultInjector();
    auto check_failures = [&]() {
        if (!fi)
            return;
        for (int d = 0; d < devices; ++d) {
            if (sharded_->isDead(d) ||
                !fi->failureDue(
                    d, std::max(host_free, group_->nowSec())))
                continue;
            const double t_fail = fi->failureTimeSec(d);
            const std::vector<ShardedSession::Rerouted> moved =
                sharded_->quarantine(d, t_fail);
            auto &dq = queued_arrivals[static_cast<std::size_t>(d)];
            for (const ShardedSession::Rerouted &rr : moved) {
                QueuedArrival qa{};
                qa.id = rr.id;
                if (!dq.empty()) {
                    qa.arrivalSec = dq.front().arrivalSec;
                    dq.pop_front();
                }
                queued_arrivals[static_cast<std::size_t>(rr.to)]
                    .push_back(qa);
                host_free += rr.transferSec;
            }
            dq.clear();
            rep.requestsRerouted += moved.size();
            if (obs::enabled())
                obs::tracer().instant(
                    "device.failure", "online", t_fail, d, 0,
                    "\"rerouted\":" + std::to_string(moved.size()));
        }
        rep.devicesFailed = group_->size() - sharded_->aliveCount();
    };

    // Oldest queued head across devices — FIFO-fair routing of ticks;
    // ties go to the lower device id. Returns -1 when all empty.
    auto oldest_device = [&](bool require_fill) {
        int best = -1;
        for (int d = 0; d < devices; ++d) {
            if (sharded_->isDead(d))
                continue;
            const auto &q = queued_arrivals[static_cast<std::size_t>(d)];
            if (q.empty())
                continue;
            if (require_fill && q.size() < fixed && !gen.done())
                continue;
            if (best < 0 ||
                q.front().arrivalSec <
                    queued_arrivals[static_cast<std::size_t>(best)]
                        .front()
                        .arrivalSec)
                best = d;
        }
        return best;
    };

    std::size_t served = 0;
    double last_completion = 0.0;
    std::vector<double> latencies_sec;
    std::vector<double> queue_delays_sec;
    latencies_sec.reserve(cfg_.numRequests);
    queue_delays_sec.reserve(cfg_.numRequests);

    while (served < cfg_.numRequests) {
        admit();
        check_failures();
        const int d = oldest_device(!cfg_.adaptive);
        if (d < 0) {
            // Idle (or wait-to-fill still filling): jump the host
            // clock to the next arrival.
            host_free = std::max(host_free, gen.peekSec());
            group_->advanceTo(host_free);
            continue;
        }
        auto &q = queued_arrivals[static_cast<std::size_t>(d)];
        const std::size_t depth = q.size();
        rep.peakQueueDepth =
            std::max(rep.peakQueueDepth, sharded_->queued());

        std::size_t batch = cfg_.adaptive ? batcher_.pick(depth)
                                          : std::min(depth, fixed);
        batch = std::max<std::size_t>(1, std::min(batch, depth));

        if (!cfg_.retainResults)
            sharded_->clearResults();

        auto &streams = stream_free[static_cast<std::size_t>(d)];
        int s = 0;
        for (int i = 1; i < num_streams; ++i)
            if (streams[static_cast<std::size_t>(i)] <
                streams[static_cast<std::size_t>(s)])
                s = i;

        const ShardBatch sb = sharded_->serveOldestOn(d, batch, s);
        const double issue_start =
            std::max(issue_free[static_cast<std::size_t>(d)], host_free);
        const double issue_done = issue_start + sb.cost.overheadSec;
        issue_free[static_cast<std::size_t>(d)] = issue_done;

        // Halo rows must be resident before the batch's kernels start;
        // rows owned by failed shards re-gather from the host store
        // over this device's PCIe lanes instead of the interconnect.
        double comm_done = issue_done;
        for (const auto &[owner, bytes] : sb.haloBytesByOwner) {
            comm_done = std::max(comm_done,
                                 group_->interconnect().transfer(
                                     owner, d, bytes, issue_done));
            rep.haloBytes += bytes;
        }
        if (sb.hostFallbackBytes > 0.0) {
            sim::Runtime &frt = group_->device(d);
            const double t = graph::hostTransferSec(
                sb.hostFallbackBytes, frt.spec());
            frt.hostOverhead(t);
            comm_done = std::max(comm_done, issue_done + t);
        }

        const double exec_start = std::max(
            comm_done,
            std::max(streams[static_cast<std::size_t>(s)],
                     contend_free[static_cast<std::size_t>(d)]));
        const double exec_done = exec_start + sb.cost.execSec;
        streams[static_cast<std::size_t>(s)] = exec_done;
        contend_free[static_cast<std::size_t>(d)] =
            exec_start + serial_frac * sb.cost.execSec;

        // All-gather the batch's outputs onto the root (device 0
        // unless it has been quarantined, then the lowest survivor).
        int root = 0;
        while (root < devices && sharded_->isDead(root))
            ++root;
        if (root >= devices)
            root = d;
        const double done =
            d != root ? group_->interconnect().transfer(
                            d, root, sb.gatherBytes, exec_done)
                      : exec_done;
        group_->advanceTo(done);

        const double halo_total = [&] {
            double b = 0.0;
            for (const auto &[owner, bytes] : sb.haloBytesByOwner)
                b += bytes;
            return b;
        }();
        if (obs::enabled()) {
            if (comm_done > issue_done)
                obs::tracer().complete(
                    "halo", "comm", issue_done, comm_done - issue_done,
                    d, s, "\"bytes\":" + obs::jsonNum(halo_total));
            obs::tracer().complete(
                "tick", "online", exec_start, sb.cost.execSec, d, s,
                "\"batch\":" + std::to_string(batch));
            if (d != root)
                obs::tracer().complete(
                    "gather", "comm", exec_done, done - exec_done, d, s,
                    "\"bytes\":" + obs::jsonNum(sb.gatherBytes));
        }

        batcher_.observe(sb.cost);
        batchSizes_.push_back(batch);
        ++rep.ticks;

        for (std::size_t i = 0; i < batch; ++i) {
            const QueuedArrival req = q.front();
            q.pop_front();
            const double lat = done - req.arrivalSec;
            const double delay =
                std::max(0.0, exec_start - req.arrivalSec);
            latencies_sec.push_back(lat);
            queue_delays_sec.push_back(delay);
            latenciesMs_.push_back(lat * 1e3);
            queueDelaysMs_.push_back(delay * 1e3);
            if (flight_) {
                if (comm_done > issue_done)
                    flight_->event(req.id, "halo", comm_done, d,
                                   "bytes=" + obs::jsonNum(halo_total));
                flight_->event(req.id, "exec-start", exec_start, d,
                               "stream=" + std::to_string(s));
                if (d != root)
                    flight_->event(
                        req.id, "all-gather", done, d,
                        "bytes=" + obs::jsonNum(sb.gatherBytes));
                flight_->event(req.id, "completion", done, d,
                               "latency_ms=" + obs::jsonNum(lat * 1e3));
            }
            if (obs::enabled())
                obs::metrics()
                    .histogram("online.latency_ms")
                    .observe(lat * 1e3);
        }
        served += batch;
        last_completion = std::max(last_completion, done);
    }

    finalizeOnlineReport(rep, served, last_completion, latencies_sec,
                         queue_delays_sec, cfg_.serving.deadlineMs);

    rep.interconnectMs =
        (group_->interconnect().totalBusySec() - ic_busy_before) * 1e3;
    fillCacheStats(rep, sharded_->planCache().stats());
    rep.launches = group_->totalLaunches() - launches_before;
    return rep;
}

} // namespace hector::serve
