#include "serve/online.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <stdexcept>

namespace hector::serve
{

// ------------------------------------------------------------ LoadGenerator

LoadGenerator::LoadGenerator(double rate_per_sec, std::size_t count,
                             std::uint64_t seed)
    : ratePerSec_(rate_per_sec), left_(count), rng_(seed)
{
    if (rate_per_sec <= 0.0)
        throw std::runtime_error("LoadGenerator: rate must be positive");
    if (left_ > 0)
        advance();
}

void
LoadGenerator::advance()
{
    // Inverse-CDF exponential over the raw 64-bit stream instead of
    // std::exponential_distribution: the gap sequence is bit-stable
    // across standard libraries, and u is rate-independent, so equal
    // seeds give arrival times that scale exactly by 1/rate.
    const double u =
        (static_cast<double>(rng_() >> 11) + 0.5) *
        (1.0 / 9007199254740992.0); // 2^-53, u in (0, 1)
    nextSec_ += -std::log(1.0 - u) / ratePerSec_;
}

double
LoadGenerator::peekSec() const
{
    if (done())
        throw std::runtime_error("LoadGenerator: exhausted");
    return nextSec_;
}

double
LoadGenerator::next()
{
    const double t = peekSec();
    --left_;
    if (left_ > 0)
        advance();
    return t;
}

std::vector<double>
LoadGenerator::arrivals(double rate_per_sec, std::size_t count,
                        std::uint64_t seed)
{
    LoadGenerator gen(rate_per_sec, count, seed);
    std::vector<double> times;
    times.reserve(count);
    while (!gen.done())
        times.push_back(gen.next());
    return times;
}

// ---------------------------------------------------------- AdaptiveBatcher

AdaptiveBatcher::AdaptiveBatcher(std::size_t max_batch, double deadline_sec,
                                 double alpha, double budget_fraction)
    : maxBatch_(std::max<std::size_t>(1, max_batch)),
      deadlineSec_(deadline_sec), alpha_(alpha),
      budgetFraction_(budget_fraction)
{
    if (alpha_ <= 0.0 || alpha_ > 1.0)
        throw std::runtime_error("AdaptiveBatcher: alpha must be in (0, 1]");
}

std::size_t
AdaptiveBatcher::pick(std::size_t queue_depth) const
{
    if (queue_depth == 0)
        return 0;
    // Saturation: the queue alone fills a maximal batch, so amortizing
    // launches over maxBatch requests is the throughput-optimal (and
    // deadline-agnostic — they are blown either way) choice.
    if (queue_depth >= maxBatch_)
        return maxBatch_;
    // Otherwise serve everything queued now; waiting to fill the batch
    // only adds fill-wait latency in an open loop.
    std::size_t b = queue_depth;
    // ... unless the cost model predicts the batch itself would eat
    // the queued requests' SLO headroom: cap so modeled service time
    // (EWMA overhead + b * EWMA per-request exec) stays within the
    // deadline budget.
    if (observed_ && deadlineSec_ > 0.0 && ewmaExecPerReqSec_ > 0.0) {
        const double budget =
            budgetFraction_ * deadlineSec_ - ewmaOverheadSec_;
        const std::size_t cap =
            budget <= ewmaExecPerReqSec_
                ? 1
                : static_cast<std::size_t>(budget / ewmaExecPerReqSec_);
        b = std::min(b, std::max<std::size_t>(1, cap));
    }
    return std::min(b, maxBatch_);
}

void
AdaptiveBatcher::observe(const BatchCost &cost)
{
    if (cost.requests == 0)
        return;
    const double per_req =
        cost.execSec / static_cast<double>(cost.requests);
    if (!observed_) {
        ewmaOverheadSec_ = cost.overheadSec;
        ewmaExecPerReqSec_ = per_req;
        observed_ = true;
        return;
    }
    ewmaOverheadSec_ += alpha_ * (cost.overheadSec - ewmaOverheadSec_);
    ewmaExecPerReqSec_ += alpha_ * (per_req - ewmaExecPerReqSec_);
}

// ------------------------------------------------------------- OnlineServer

OnlineServer::OnlineServer(const graph::HeteroGraph &g,
                           tensor::Tensor host_features,
                           std::string model_source, OnlineConfig cfg,
                           sim::Runtime &rt)
    : cfg_(cfg), rt_(rt),
      session_(g, std::move(host_features), std::move(model_source),
               cfg.serving, rt),
      batcher_(std::max<std::size_t>(1, cfg.serving.maxBatch),
               cfg.serving.deadlineMs * 1e-3, cfg.ewmaAlpha,
               cfg.deadlineBudgetFraction)
{}

OnlineReport
OnlineServer::run()
{
    OnlineReport rep;
    rep.offeredRatePerSec = cfg_.arrivalRatePerSec;
    rep.deadlineMs = cfg_.serving.deadlineMs;
    latenciesMs_.clear();
    queueDelaysMs_.clear();
    batchSizes_.clear();
    if (cfg_.numRequests == 0)
        return rep;

    LoadGenerator gen(cfg_.arrivalRatePerSec, cfg_.numRequests,
                      cfg_.arrivalSeed);

    const int num_streams = std::max(1, cfg_.serving.numStreams);
    const double serial_frac = rt_.spec().streamSerialFraction;
    const double deadline_sec = cfg_.serving.deadlineMs * 1e-3;
    const std::size_t max_batch =
        std::max<std::size_t>(1, cfg_.serving.maxBatch);
    const std::size_t fixed = std::min(
        max_batch, cfg_.fixedBatch > 0 ? cfg_.fixedBatch : max_batch);

    // Open-loop timeline, per-batch application of the runtime's
    // overlap rule: one host thread serializes transfers and launch
    // overheads (host_free), each stream runs one batch at a time
    // (stream_free), and the serialized fraction of every kernel
    // occupies a device-wide shared resource (contend_free) so
    // overlapped streams can never beat the contention floor.
    std::vector<double> stream_free(
        static_cast<std::size_t>(num_streams), 0.0);
    double host_free = 0.0;
    double contend_free = 0.0;

    /** Arrival time of each queued request, FIFO like the session. */
    std::deque<double> queued_arrivals;

    const std::uint64_t launches_before = rt_.counters().total().launches;

    // Admit every arrival the host clock has passed; each pays its
    // modeled host-to-device transfer on the serialized host clock.
    auto admit = [&]() {
        while (!gen.done() && gen.peekSec() <= host_free) {
            const double arr = gen.next();
            rep.lastArrivalMs = arr * 1e3;
            const double host_before = rt_.hostTimeMs() * 1e-3;
            session_.submit();
            const double transfer = rt_.hostTimeMs() * 1e-3 - host_before;
            host_free = std::max(host_free, arr) + transfer;
            queued_arrivals.push_back(arr);
        }
    };

    std::size_t served = 0;
    std::size_t met = 0;
    double lat_sum = 0.0;
    double delay_sum = 0.0;
    double last_completion = 0.0;
    std::vector<double> latencies_sec;
    latencies_sec.reserve(cfg_.numRequests);

    while (served < cfg_.numRequests) {
        admit();
        if (queued_arrivals.empty()) {
            // Idle: jump the host clock to the next arrival.
            host_free = std::max(host_free, gen.peekSec());
            rt_.advanceTo(host_free);
            continue;
        }

        const std::size_t depth = queued_arrivals.size();
        rep.peakQueueDepth = std::max(rep.peakQueueDepth, depth);

        std::size_t batch;
        if (cfg_.adaptive) {
            batch = batcher_.pick(depth);
        } else if (depth >= fixed || gen.done()) {
            batch = std::min(depth, fixed);
        } else {
            // Wait-to-fill: hold the queue until the fixed batch is
            // complete (or arrivals run out).
            host_free = std::max(host_free, gen.peekSec());
            rt_.advanceTo(host_free);
            continue;
        }
        batch = std::max<std::size_t>(1, std::min(batch, depth));

        if (!cfg_.retainResults)
            session_.clearResults();

        int s = 0;
        for (int i = 1; i < num_streams; ++i)
            if (stream_free[static_cast<std::size_t>(i)] <
                stream_free[static_cast<std::size_t>(s)])
                s = i;

        const BatchCost cost = session_.serveOldest(batch, s);
        const double issue_done = host_free + cost.overheadSec;
        const double exec_start =
            std::max(issue_done,
                     std::max(stream_free[static_cast<std::size_t>(s)],
                              contend_free));
        const double done = exec_start + cost.execSec;
        host_free = issue_done;
        stream_free[static_cast<std::size_t>(s)] = done;
        contend_free = exec_start + serial_frac * cost.execSec;
        rt_.advanceTo(done);

        batcher_.observe(cost);
        batchSizes_.push_back(batch);
        ++rep.ticks;

        for (std::size_t i = 0; i < batch; ++i) {
            const double arr = queued_arrivals.front();
            queued_arrivals.pop_front();
            const double lat = done - arr;
            const double delay = std::max(0.0, exec_start - arr);
            latencies_sec.push_back(lat);
            latenciesMs_.push_back(lat * 1e3);
            queueDelaysMs_.push_back(delay * 1e3);
            lat_sum += lat;
            delay_sum += delay;
            if (deadline_sec <= 0.0 || lat <= deadline_sec)
                ++met;
        }
        served += batch;
        last_completion = std::max(last_completion, done);
    }

    rep.requests = served;
    rep.batches = rep.ticks;
    rep.makespanMs = last_completion * 1e3;
    rep.throughputReqPerSec =
        last_completion > 0.0
            ? static_cast<double>(served) / last_completion
            : 0.0;
    rep.msPerRequest =
        served ? rep.makespanMs / static_cast<double>(served) : 0.0;
    rep.meanLatencyMs = lat_sum / static_cast<double>(served) * 1e3;
    rep.meanQueueDelayMs = delay_sum / static_cast<double>(served) * 1e3;
    rep.sloAttainment =
        static_cast<double>(met) / static_cast<double>(served);
    rep.meanBatchSize =
        rep.ticks ? static_cast<double>(served) /
                        static_cast<double>(rep.ticks)
                  : 0.0;

    std::sort(latencies_sec.begin(), latencies_sec.end());
    rep.p50LatencyMs = percentileSorted(latencies_sec, 0.50) * 1e3;
    rep.p95LatencyMs = percentileSorted(latencies_sec, 0.95) * 1e3;
    rep.p99LatencyMs = percentileSorted(latencies_sec, 0.99) * 1e3;
    rep.maxLatencyMs =
        latencies_sec.empty() ? 0.0 : latencies_sec.back() * 1e3;

    rep.cacheHits = session_.planCache().stats().hits;
    rep.cacheMisses = session_.planCache().stats().misses;
    rep.launches = rt_.counters().total().launches - launches_before;
    return rep;
}

} // namespace hector::serve
