#include "serve/online.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <fstream>
#include <limits>
#include <numbers>
#include <set>
#include <stdexcept>

#include "serve/resilience.hh"

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"

namespace hector::serve
{

// ------------------------------------------------------------ LoadGenerator

LoadGenerator::LoadGenerator(double rate_per_sec, std::size_t count,
                             std::uint64_t seed)
    : LoadGenerator(rate_per_sec, count, seed, MmppSpec{})
{}

LoadGenerator::LoadGenerator(double rate_per_sec, std::size_t count,
                             std::uint64_t seed, const MmppSpec &mmpp)
    : LoadGenerator(rate_per_sec, count, seed, mmpp, DiurnalSpec{})
{}

LoadGenerator::LoadGenerator(double rate_per_sec, std::size_t count,
                             std::uint64_t seed, const MmppSpec &mmpp,
                             const DiurnalSpec &diurnal)
    : ratePerSec_(rate_per_sec), left_(count), rng_(seed), mmpp_(mmpp),
      diurnal_(diurnal)
{
    if (rate_per_sec <= 0.0)
        throw std::runtime_error("LoadGenerator: rate must be positive");
    if (mmpp_.enabled && mmpp_.burstRateMultiplier <= 0.0)
        throw std::runtime_error(
            "LoadGenerator: mmpp.burstRateMultiplier must be positive");
    if (diurnal_.enabled &&
        (!(diurnal_.amplitude >= 0.0) || diurnal_.amplitude >= 1.0))
        throw std::runtime_error(
            "LoadGenerator: diurnal.amplitude must be in [0, 1)");
    if (diurnal_.enabled && !(diurnal_.periodSec > 0.0))
        throw std::runtime_error(
            "LoadGenerator: diurnal.periodSec must be positive");
    if (left_ > 0)
        advance();
}

LoadGenerator::LoadGenerator(std::vector<double> times_sec)
    : ratePerSec_(1.0), left_(times_sec.size()), rng_(0),
      trace_(std::move(times_sec))
{
    double prev = 0.0;
    for (double t : trace_) {
        if (!(t >= prev)) // also rejects NaN
            throw std::invalid_argument(
                "LoadGenerator: trace timestamps must be non-negative "
                "and non-decreasing");
        prev = t;
    }
    if (left_ > 0)
        advance();
}

std::vector<double>
LoadGenerator::loadTrace(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw std::runtime_error("LoadGenerator::loadTrace: cannot open " +
                                 path);
    std::vector<double> times;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos || line[b] == '#')
            continue;
        const std::size_t e = line.find_last_not_of(" \t\r");
        const std::string tok = line.substr(b, e - b + 1);
        std::size_t pos = 0;
        double t = 0.0;
        try {
            t = std::stod(tok, &pos);
        } catch (const std::exception &) {
            pos = 0;
        }
        if (pos != tok.size() || !std::isfinite(t))
            throw std::runtime_error(
                "LoadGenerator::loadTrace: malformed timestamp at " +
                path + ":" + std::to_string(lineno));
        times.push_back(t);
    }
    return times;
}

double
LoadGenerator::nextU()
{
    // Inverse-CDF uniform over the raw 64-bit stream instead of
    // std::*_distribution: the sequence is bit-stable across standard
    // libraries, and u is rate-independent, so equal seeds give
    // arrival times that scale exactly by 1/rate.
    return (static_cast<double>(rng_() >> 11) + 0.5) *
           (1.0 / 9007199254740992.0); // 2^-53, u in (0, 1)
}

void
LoadGenerator::advance()
{
    if (!trace_.empty()) {
        nextSec_ = trace_[traceIdx_++];
        return;
    }
    const double u = nextU();
    // Pure Poisson draws exactly one uniform per gap (the historical
    // stream, bit-identical); MMPP draws the gap at the CURRENT
    // state's rate, then one extra uniform to decide the state the
    // next gap is drawn in.
    double rate = mmpp_.enabled && burst_
                      ? ratePerSec_ * mmpp_.burstRateMultiplier
                      : ratePerSec_;
    // Diurnal modulation composes multiplicatively on top of the MMPP
    // state; amplitude < 1 keeps the instantaneous rate positive.
    // Disabled, the expression above is untouched — the historical
    // arrival stream stays bit-identical.
    if (diurnal_.enabled)
        rate *= 1.0 + diurnal_.amplitude *
                          std::sin(2.0 * std::numbers::pi * nextSec_ /
                                   diurnal_.periodSec);
    nextSec_ += -std::log(1.0 - u) / rate;
    if (mmpp_.enabled) {
        const double v = nextU();
        if (burst_ ? v < mmpp_.pExitBurst : v < mmpp_.pEnterBurst)
            burst_ = !burst_;
    }
}

double
LoadGenerator::peekSec() const
{
    if (done())
        throw std::runtime_error("LoadGenerator: exhausted");
    return nextSec_;
}

double
LoadGenerator::next()
{
    const double t = peekSec();
    --left_;
    if (left_ > 0)
        advance();
    return t;
}

std::vector<double>
LoadGenerator::arrivals(double rate_per_sec, std::size_t count,
                        std::uint64_t seed)
{
    return arrivals(rate_per_sec, count, seed, MmppSpec{});
}

std::vector<double>
LoadGenerator::arrivals(double rate_per_sec, std::size_t count,
                        std::uint64_t seed, const MmppSpec &mmpp)
{
    LoadGenerator gen(rate_per_sec, count, seed, mmpp);
    std::vector<double> times;
    times.reserve(count);
    while (!gen.done())
        times.push_back(gen.next());
    return times;
}

// ------------------------------------------------------------- OnlineServer

namespace
{

/**
 * Shared finalization tail of the three tick loops: rate and
 * batch-size metrics, the per-request latency statistics via
 * fillLatencyStats (so the drain and online paths cannot drift), and
 * the shedding statistics — admittedSloAttainment keeps the
 * admitted-only attainment, while sloAttainment counts shed arrivals
 * as misses (denominator = offered), which reduces to the historical
 * value whenever nothing was shed.
 */
void
finalizeOnlineReport(OnlineReport &rep, std::size_t served,
                     double last_completion_sec,
                     const std::vector<double> &latencies_sec,
                     const std::vector<double> &queue_delays_sec,
                     double deadline_ms, std::size_t shed,
                     std::size_t failed = 0)
{
    rep.requests = served;
    rep.batches = rep.ticks;
    rep.makespanMs = last_completion_sec * 1e3;
    rep.throughputReqPerSec =
        last_completion_sec > 0.0
            ? static_cast<double>(served) / last_completion_sec
            : 0.0;
    rep.msPerRequest =
        served ? rep.makespanMs / static_cast<double>(served) : 0.0;
    rep.meanBatchSize =
        rep.ticks ? static_cast<double>(served) /
                        static_cast<double>(rep.ticks)
                  : 0.0;
    fillLatencyStats(rep, latencies_sec, queue_delays_sec, deadline_ms);

    rep.requestsShed = shed;
    rep.admittedSloAttainment = rep.sloAttainment;
    // Resilience-failed requests (timeouts, exhausted retries) were
    // admitted, so they stay out of shedFraction but count as misses
    // in the offered-denominator sloAttainment, exactly like sheds.
    const std::size_t offered = served + shed + failed;
    rep.shedFraction =
        offered > 0
            ? static_cast<double>(shed) / static_cast<double>(offered)
            : 0.0;
    if ((shed > 0 || failed > 0) && deadline_ms > 0.0) {
        std::size_t met = 0;
        for (double l : latencies_sec)
            if (l * 1e3 <= deadline_ms)
                ++met;
        rep.sloAttainment = static_cast<double>(met) /
                            static_cast<double>(offered);
    }
}

/**
 * Single-device open-loop clocks, shared by runSingle() and
 * runMulti() so the single- and multi-tenant tick machinery cannot
 * drift: one host thread admits arrivals and issues launches
 * (hostFree), each stream runs one batch at a time (streamFree), and
 * the serialized fraction of every kernel occupies a device-wide
 * shared resource (contendFree) — Runtime::makespanSec's overlap
 * rule, applied per batch.
 */
/** Arrival time and request id of one queued arrival (FIFO entries of
 *  the tick loops; the id attributes flight-recorder lifecycle events
 *  to the engine-assigned request). */
struct QueuedArrival
{
    double arrivalSec = 0.0;
    std::uint64_t id = 0;
    /** Failed attempts so far (resilience retry bookkeeping). */
    int attempts = 0;
    /** Earliest time a retried request may be served (backoff hold). */
    double notBeforeSec = 0.0;
};

struct OpenLoopClock
{
    std::vector<double> streamFree;
    double hostFree = 0.0;
    double contendFree = 0.0;
    double serialFrac = 0.0;

    OpenLoopClock(int num_streams, double serial_frac)
        : streamFree(static_cast<std::size_t>(num_streams), 0.0),
          serialFrac(serial_frac)
    {}

    /** Least-loaded stream (ties to the lower id). */
    int
    pickStream() const
    {
        int s = 0;
        for (std::size_t i = 1; i < streamFree.size(); ++i)
            if (streamFree[i] < streamFree[static_cast<std::size_t>(s)])
                s = static_cast<int>(i);
        return s;
    }

    struct Issued
    {
        double execStart = 0.0;
        double done = 0.0;
    };

    /** Advance all three clocks for one batch issued to @p stream. */
    Issued
    issue(const BatchCost &cost, int stream)
    {
        const double issue_done = hostFree + cost.overheadSec;
        Issued t;
        t.execStart = std::max(
            issue_done,
            std::max(streamFree[static_cast<std::size_t>(stream)],
                     contendFree));
        t.done = t.execStart + cost.execSec;
        hostFree = issue_done;
        streamFree[static_cast<std::size_t>(stream)] = t.done;
        contendFree = t.execStart + serialFrac * cost.execSec;
        return t;
    }
};

/** One lane's LaneSpec from its ServingConfig + the run's OnlineConfig
 *  — the single place the policy layer learns a lane's knobs. */
LaneSpec
laneSpecFrom(const std::string &name, const ServingConfig &scfg,
             const OnlineConfig &cfg)
{
    LaneSpec spec;
    spec.name = name;
    spec.maxBatch = std::max<std::size_t>(1, scfg.maxBatch);
    spec.deadlineSec = scfg.deadlineMs * 1e-3;
    spec.fixedBatch = std::min(
        spec.maxBatch,
        cfg.fixedBatch > 0 ? cfg.fixedBatch : spec.maxBatch);
    spec.weight = scfg.tenantWeight;
    spec.tier = scfg.tenantTier;
    spec.maxQueueDepth = scfg.maxQueueDepth;
    spec.shed = scfg.shed;
    spec.ewmaAlpha = cfg.ewmaAlpha;
    spec.budgetFraction = cfg.deadlineBudgetFraction;
    return spec;
}

/** Lane with the oldest head-of-line arrival — the forced-progress
 *  fallback when a (custom) policy returns -1 with no arrivals left. */
int
oldestLane(const std::vector<LaneView> &views)
{
    int best = -1;
    for (std::size_t i = 0; i < views.size(); ++i) {
        if (views[i].queueDepth == 0)
            continue;
        if (best < 0 ||
            views[i].headArrivalSec <
                views[static_cast<std::size_t>(best)].headArrivalSec)
            best = static_cast<int>(i);
    }
    return best;
}

/** Record one shed arrival: flight-recorder lifecycle ("arrival" ->
 *  "shed" with the policy's reason), metrics counter, trace instant. */
void
recordShed(obs::FlightRecorder *flight, std::uint64_t id,
           double arrival_sec, int device, const char *reason,
           const std::string &variant)
{
    if (flight) {
        flight->event(id, "arrival", arrival_sec, device,
                      variant.empty() ? std::string()
                                      : "variant=" + variant);
        flight->event(id, "shed", arrival_sec, device,
                      std::string("reason=") + reason);
    }
    if (obs::enabled()) {
        obs::metrics().counter("online.requests_shed").inc();
        obs::tracer().instant("shed", "online", arrival_sec, device, 0,
                              std::string("\"reason\":\"") + reason +
                                  "\"");
    }
}

/** Copy a run's resilience counters into its report (no-op without a
 *  manager, keeping the no-resilience report bytes untouched). */
void
applyResilienceStats(OnlineReport &rep, const ResilienceManager *resil)
{
    if (!resil)
        return;
    const ResilienceStats &s = resil->stats();
    rep.requestsRetried = s.requestsRetried;
    rep.requestsHedged = s.requestsHedged;
    rep.hedgeWins = s.hedgeWins;
    rep.requestsTimedOut = s.requestsTimedOut;
    rep.requestsFailed = s.requestsFailed;
    rep.breakerOpens = s.breakerOpens;
    rep.brownoutTicks = s.brownoutTicks;
}

/** Throw early (at construction) on a policy name the registry cannot
 *  resolve, instead of failing mid-run. */
void
validatePolicyName(const OnlineConfig &cfg)
{
    if (!cfg.makePolicy && !cfg.policy.empty() &&
        !schedulerPolicyRegistered(cfg.policy))
        throw std::invalid_argument(
            "OnlineServer: unknown scheduling policy '" + cfg.policy +
            "'");
}

} // namespace

OnlineServer::OnlineServer(const graph::HeteroGraph &g,
                           tensor::Tensor host_features,
                           std::string model_source, OnlineConfig cfg,
                           sim::Runtime &rt)
    : cfg_(cfg), rt_(&rt),
      session_(std::make_unique<ServingSession>(
          g, std::move(host_features), std::move(model_source),
          cfg.serving, rt)),
      batcher_(std::max<std::size_t>(1, cfg.serving.maxBatch),
               cfg.serving.deadlineMs * 1e-3, cfg.ewmaAlpha,
               cfg.deadlineBudgetFraction,
               cfg.serving.maxQueueDepth > 0 &&
                   cfg.serving.shed != ShedMode::None)
{
    validatePolicyName(cfg_);
}

OnlineServer::OnlineServer(const graph::HeteroGraph &g,
                           tensor::Tensor host_features,
                           std::string model_source, OnlineConfig cfg,
                           sim::DeviceGroup &group)
    : cfg_(cfg), group_(&group),
      batcher_(std::max<std::size_t>(1, cfg.serving.maxBatch),
               cfg.serving.deadlineMs * 1e-3, cfg.ewmaAlpha,
               cfg.deadlineBudgetFraction,
               cfg.serving.maxQueueDepth > 0 &&
                   cfg.serving.shed != ShedMode::None)
{
    validatePolicyName(cfg_);
    ShardedConfig scfg;
    scfg.serving = cfg.serving;
    scfg.partition = cfg.partition;
    sharded_ = std::make_unique<ShardedSession>(
        g, std::move(host_features), std::move(model_source), scfg,
        group);
}

OnlineServer::OnlineServer(Engine &engine, OnlineConfig cfg)
    : cfg_(cfg), engine_(&engine),
      batcher_(std::max<std::size_t>(1, cfg.serving.maxBatch),
               cfg.serving.deadlineMs * 1e-3, cfg.ewmaAlpha,
               cfg.deadlineBudgetFraction,
               cfg.serving.maxQueueDepth > 0 &&
                   cfg.serving.shed != ShedMode::None)
{
    validatePolicyName(cfg_);
    if (cfg_.variants.empty())
        throw std::invalid_argument(
            "OnlineServer: multi-tenant mode needs at least one "
            "VariantLoad");
    std::set<std::string> seen;
    for (const VariantLoad &load : cfg_.variants) {
        if (engine.variantIndex(load.variant) < 0)
            throw std::invalid_argument(
                "OnlineServer: unregistered variant '" + load.variant +
                "'");
        if (!seen.insert(load.variant).second)
            throw std::invalid_argument(
                "OnlineServer: duplicate VariantLoad for variant '" +
                load.variant +
                "' (two lanes feeding one FIFO would scramble "
                "per-request latency attribution)");
        if (load.ratePerSec <= 0.0)
            throw std::invalid_argument(
                "OnlineServer: ratePerSec must be > 0 for variant '" +
                load.variant + "'");
    }
}

ServingSession &
OnlineServer::session()
{
    if (!session_)
        throw std::runtime_error(
            "OnlineServer::session: server does not run in "
            "single-device mode");
    return *session_;
}

ShardedSession &
OnlineServer::sharded()
{
    if (!sharded_)
        throw std::runtime_error(
            "OnlineServer::sharded: server does not run in sharded mode");
    return *sharded_;
}

Engine &
OnlineServer::engine()
{
    if (!engine_)
        throw std::runtime_error(
            "OnlineServer::engine: server does not run in multi-tenant "
            "mode");
    return *engine_;
}

void
OnlineServer::setFlightRecorder(obs::FlightRecorder *fr)
{
    flight_ = fr;
    if (engine_)
        engine_->setFlightRecorder(fr);
    if (session_)
        session_->engine().setFlightRecorder(fr);
    if (sharded_)
        sharded_->setFlightRecorder(fr);
}

std::unique_ptr<SchedulerPolicy>
OnlineServer::buildPolicy(PolicySetup setup) const
{
    std::unique_ptr<SchedulerPolicy> policy;
    if (cfg_.makePolicy)
        policy = cfg_.makePolicy(setup);
    else
        policy = makeSchedulerPolicy(
            !cfg_.policy.empty()
                ? cfg_.policy
                : (cfg_.adaptive ? std::string("adaptive")
                                 : std::string("fixed")),
            std::move(setup));
    if (!policy)
        throw std::runtime_error(
            "OnlineServer: policy factory returned null");
    return policy;
}

OnlineReport
OnlineServer::run()
{
    if (engine_)
        return runMulti();
    return sharded_ ? runSharded() : runSingle();
}

OnlineReport
OnlineServer::runSingle()
{
    OnlineReport rep;
    rep.offeredRatePerSec = cfg_.arrivalRatePerSec;
    rep.deadlineMs = cfg_.serving.deadlineMs;
    latenciesMs_.clear();
    queueDelaysMs_.clear();
    batchSizes_.clear();

    PolicySetup setup;
    setup.lanes.push_back(laneSpecFrom("default", cfg_.serving, cfg_));
    setup.sharedBatcher = &batcher_;
    const std::unique_ptr<SchedulerPolicy> policy =
        buildPolicy(std::move(setup));
    rep.policy = policy->name();
    const std::size_t total_requests = cfg_.arrivalTrace.empty()
                                           ? cfg_.numRequests
                                           : cfg_.arrivalTrace.size();
    if (total_requests == 0)
        return rep;

    LoadGenerator gen =
        cfg_.arrivalTrace.empty()
            ? LoadGenerator(cfg_.arrivalRatePerSec, cfg_.numRequests,
                            cfg_.arrivalSeed, cfg_.serving.mmpp,
                            cfg_.serving.diurnal)
            : LoadGenerator(cfg_.arrivalTrace);

    std::unique_ptr<ResilienceManager> resil;
    if (cfg_.serving.resilience.enabled) {
        resil = std::make_unique<ResilienceManager>(
            cfg_.serving.resilience, 1);
        resil->setFlightRecorder(flight_);
    }
    const double deadline_sec = cfg_.serving.deadlineMs * 1e-3;

    const int num_streams = std::max(1, cfg_.serving.numStreams);
    const double serial_frac = rt_->spec().streamSerialFraction;

    // Open-loop timeline, per-batch application of the runtime's
    // overlap rule (OpenLoopClock — shared with the multi-tenant
    // loop).
    OpenLoopClock clock(num_streams, serial_frac);

    /** Arrival time and id of each queued request, FIFO like the
     *  session. */
    std::deque<QueuedArrival> queued_arrivals;

    const std::uint64_t launches_before = rt_->counters().total().launches;
    std::size_t shed_total = 0;
    std::size_t failed_total = 0;

    // Admit (or shed) every arrival the host clock has passed; each
    // admitted request pays its modeled host-to-device transfer on the
    // serialized host clock, while shed arrivals never sample, never
    // transfer, and never touch a queue.
    auto admit = [&]() {
        while (!gen.done() && gen.peekSec() <= clock.hostFree) {
            const double arr = gen.next();
            rep.lastArrivalMs = arr * 1e3;
            LaneView view;
            view.queueDepth = queued_arrivals.size();
            view.headArrivalSec = queued_arrivals.empty()
                                      ? arr
                                      : queued_arrivals.front().arrivalSec;
            view.moreArrivals = !gen.done();
            const AdmitDecision dec =
                policy->admit(0, view, arr, clock.hostFree);
            if (!dec.admit) {
                ++shed_total;
                recordShed(flight_, session_->reserveId(), arr,
                           rt_->deviceId(), dec.reason, std::string());
                if (resil)
                    resil->noteFailure(0, clock.hostFree, "shed");
                continue;
            }
            if (resil)
                resil->noteAdmit(0);
            const double host_before = rt_->hostTimeMs() * 1e-3;
            const std::uint64_t id = session_->submit();
            const double transfer = rt_->hostTimeMs() * 1e-3 - host_before;
            clock.hostFree = std::max(clock.hostFree, arr) + transfer;
            if (flight_) {
                flight_->event(id, "arrival", arr, rt_->deviceId());
                flight_->event(id, "admission", clock.hostFree,
                               rt_->deviceId(),
                               "transfer_ms=" +
                                   obs::jsonNum(transfer * 1e3));
            }
            queued_arrivals.push_back(QueuedArrival{arr, id});
            rep.peakLaneQueueDepth = std::max(rep.peakLaneQueueDepth,
                                              queued_arrivals.size());
        }
    };

    std::size_t served = 0;
    double last_completion = 0.0;
    std::vector<double> latencies_sec;
    std::vector<double> queue_delays_sec;
    latencies_sec.reserve(total_requests);
    queue_delays_sec.reserve(total_requests);

    // Timeout cancellation: fail the queue head fast while its
    // remaining deadline budget cannot cover the policy's calibrated
    // service estimate. Read-only unless it fires, so a run where no
    // deadline ever expires keeps the pre-resilience timeline.
    auto failfast = [&]() {
        if (!resil || deadline_sec <= 0.0)
            return;
        while (!queued_arrivals.empty()) {
            const QueuedArrival head = queued_arrivals.front();
            const double est = policy->estimateServiceSec(0, 1);
            if (!resil->deadlineExpired(head.arrivalSec, deadline_sec,
                                        clock.hostFree, est))
                break;
            session_->dropOldest(1);
            queued_arrivals.pop_front();
            resil->recordTimeout(head.id, 0, rt_->deviceId(),
                                 head.arrivalSec, clock.hostFree);
            ++failed_total;
        }
    };

    while (served + shed_total + failed_total < total_requests) {
        admit();
        failfast();
        if (queued_arrivals.empty()) {
            if (gen.done())
                break; // everything remaining was shed
            // Idle: jump the host clock to the next arrival.
            clock.hostFree = std::max(clock.hostFree, gen.peekSec());
            rt_->advanceTo(clock.hostFree);
            continue;
        }

        const std::size_t depth = queued_arrivals.size();
        rep.peakQueueDepth = std::max(rep.peakQueueDepth, depth);
        rep.peakLaneQueueDepth =
            std::max(rep.peakLaneQueueDepth, depth);

        if (resil) {
            resil->tickBrownout(depth, cfg_.serving.maxQueueDepth,
                                clock.hostFree);
            session_->engine().setDuplicationScale(
                resil->duplicationScale());
        }

        std::vector<LaneView> views(1);
        views[0].queueDepth = depth;
        views[0].headArrivalSec = queued_arrivals.front().arrivalSec;
        views[0].moreArrivals = !gen.done();
        views[0].blocked = resil && resil->blocked(0, clock.hostFree);
        int lane = policy->pickLane(views);
        if (lane < 0) {
            if (!gen.done()) {
                // Wait (e.g. wait-to-fill still filling, or an open
                // breaker): jump the host clock to the next arrival.
                clock.hostFree = std::max(clock.hostFree, gen.peekSec());
                rt_->advanceTo(clock.hostFree);
                continue;
            }
            lane = oldestLane(views); // forced progress (breaker probe)
        }

        std::size_t batch = policy->pickBatch(0, views[0]);
        batch = std::max<std::size_t>(1, std::min(batch, depth));

        if (!cfg_.retainResults)
            session_->clearResults();

        // Hedge: the head request has waited past the EWMA-derived
        // delay, so a backup copy runs on a second stream; the first
        // completion wins. The primary result stays authoritative
        // (hedgeOldest stores nothing), so outputs are bit-identical
        // to the unhedged run by construction.
        const int s = clock.pickStream();
        const QueuedArrival head = queued_arrivals.front();
        bool hedged = false;
        BatchCost hedge_cost;
        int hs = -1;
        if (resil && resil->hedgeReady() && num_streams > 1) {
            const double waited = clock.hostFree - head.arrivalSec;
            if (waited > resil->hedgeDelaySec()) {
                hs = s == 0 ? 1 : 0;
                for (int i = 0; i < num_streams; ++i)
                    if (i != s &&
                        clock.streamFree[static_cast<std::size_t>(i)] <
                            clock.streamFree[static_cast<std::size_t>(
                                hs)])
                        hs = i;
                hedge_cost = session_->hedgeOldest(hs);
                hedged = hedge_cost.requests > 0;
                if (hedged)
                    resil->recordHedge(head.id, 0, rt_->deviceId(),
                                       clock.hostFree, waited);
            }
        }

        const BatchCost cost = session_->serveOldest(batch, s);
        const OpenLoopClock::Issued t = clock.issue(cost, s);
        double head_done = t.done;
        if (hedged) {
            const OpenLoopClock::Issued th =
                clock.issue(hedge_cost, hs);
            const bool hedge_won = th.done < t.done;
            head_done = std::min(t.done, th.done);
            resil->recordHedgeOutcome(head.id, rt_->deviceId(),
                                      head_done, hedge_won);
            last_completion = std::max(last_completion, th.done);
        }
        rt_->advanceTo(std::max(t.done, last_completion));

        if (obs::enabled())
            obs::tracer().complete(
                "tick", "online", t.execStart, cost.execSec,
                rt_->deviceId(), s,
                "\"batch\":" + std::to_string(batch));

        policy->observe(0, cost);
        batchSizes_.push_back(batch);
        ++rep.ticks;

        for (std::size_t i = 0; i < batch; ++i) {
            const QueuedArrival req = queued_arrivals.front();
            queued_arrivals.pop_front();
            const double done_at = i == 0 ? head_done : t.done;
            const double lat = done_at - req.arrivalSec;
            const double delay =
                std::max(0.0, t.execStart - req.arrivalSec);
            latencies_sec.push_back(lat);
            queue_delays_sec.push_back(delay);
            latenciesMs_.push_back(lat * 1e3);
            queueDelaysMs_.push_back(delay * 1e3);
            if (resil)
                resil->observeLatency(lat);
            if (flight_) {
                flight_->event(req.id, "exec-start", t.execStart,
                               rt_->deviceId(),
                               "stream=" + std::to_string(s));
                flight_->event(req.id, "completion", done_at,
                               rt_->deviceId(),
                               "latency_ms=" + obs::jsonNum(lat * 1e3));
            }
            if (obs::enabled())
                obs::metrics()
                    .histogram("online.latency_ms")
                    .observe(lat * 1e3);
        }
        served += batch;
        if (resil)
            resil->noteSuccess(0, t.done);
        last_completion = std::max(last_completion, t.done);
    }

    finalizeOnlineReport(rep, served, last_completion, latencies_sec,
                         queue_delays_sec, cfg_.serving.deadlineMs,
                         shed_total, failed_total);
    applyResilienceStats(rep, resil.get());

    fillCacheStats(rep, session_->planCache().stats());
    rep.launches = rt_->counters().total().launches - launches_before;
    return rep;
}

OnlineReport
OnlineServer::runMulti()
{
    sim::Runtime &rt = engine_->runtime();
    OnlineReport rep;
    // Start from the base config's deadline like the other two paths
    // (historically this was zeroed here, so an empty multi-tenant run
    // reported deadlineMs = 0 even when one was configured); lanes
    // with their own SLOs below can only raise it.
    rep.deadlineMs = cfg_.serving.deadlineMs;
    latenciesMs_.clear();
    queueDelaysMs_.clear();
    batchSizes_.clear();

    /** One open-loop arrival process + queue per variant (batch
     *  sizing and lane ordering live in the SchedulerPolicy). */
    struct Lane
    {
        int variant;
        std::string name;
        LoadGenerator gen;
        std::deque<QueuedArrival> queued;
        double deadlineSec;
        std::vector<double> latencies; ///< seconds, completion order
        std::size_t met = 0;
        std::size_t shed = 0;

        Lane(int v, const VariantLoad &load, const ServingConfig &cfg)
            : variant(v), name(load.variant),
              gen(load.ratePerSec, load.numRequests, load.arrivalSeed,
                  cfg.mmpp, cfg.diurnal),
              deadlineSec(cfg.deadlineMs * 1e-3)
        {}
    };

    std::vector<Lane> lanes;
    lanes.reserve(cfg_.variants.size());
    PolicySetup setup;
    setup.lanes.reserve(cfg_.variants.size());
    std::size_t total = 0;
    for (const VariantLoad &load : cfg_.variants) {
        const int v = engine_->variantIndex(load.variant);
        const ServingConfig &vcfg = engine_->variantConfig(v);
        lanes.emplace_back(v, load, vcfg);
        setup.lanes.push_back(laneSpecFrom(load.variant, vcfg, cfg_));
        rep.offeredRatePerSec += load.ratePerSec;
        rep.deadlineMs = std::max(rep.deadlineMs, vcfg.deadlineMs);
        total += load.numRequests;
    }
    const std::unique_ptr<SchedulerPolicy> policy =
        buildPolicy(std::move(setup));
    rep.policy = policy->name();
    if (total == 0)
        return rep;

    std::unique_ptr<ResilienceManager> resil;
    if (cfg_.serving.resilience.enabled) {
        resil = std::make_unique<ResilienceManager>(
            cfg_.serving.resilience, lanes.size());
        resil->setFlightRecorder(flight_);
    }
    std::size_t brownout_bound = 0;
    for (const Lane &ln : lanes)
        brownout_bound =
            std::max(brownout_bound,
                     engine_->variantConfig(ln.variant).maxQueueDepth);

    const int num_streams = std::max(1, engine_->config().numStreams);
    const double serial_frac = rt.spec().streamSerialFraction;

    // The single-device overlap rule of runSingle, shared through
    // OpenLoopClock and applied across lanes.
    OpenLoopClock clock(num_streams, serial_frac);

    const std::uint64_t launches_before = rt.counters().total().launches;
    std::size_t shed_total = 0;
    std::size_t failed_total = 0;
    bool any_deadline = false;

    // Admit (or shed) every arrival the host clock has passed, across
    // lanes in global time order; each admitted request pays its
    // modeled transfer on the serialized host clock.
    auto admit = [&]() {
        while (true) {
            std::size_t next = lanes.size();
            for (std::size_t i = 0; i < lanes.size(); ++i)
                if (!lanes[i].gen.done() &&
                    lanes[i].gen.peekSec() <= clock.hostFree &&
                    (next == lanes.size() ||
                     lanes[i].gen.peekSec() < lanes[next].gen.peekSec()))
                    next = i;
            if (next == lanes.size())
                break;
            Lane &ln = lanes[next];
            const double arr = ln.gen.next();
            rep.lastArrivalMs = std::max(rep.lastArrivalMs, arr * 1e3);
            LaneView view;
            view.queueDepth = ln.queued.size();
            view.headArrivalSec =
                ln.queued.empty() ? arr : ln.queued.front().arrivalSec;
            view.moreArrivals = !ln.gen.done();
            const AdmitDecision dec =
                policy->admit(next, view, arr, clock.hostFree);
            if (!dec.admit) {
                ++ln.shed;
                ++shed_total;
                if (ln.deadlineSec > 0.0)
                    any_deadline = true;
                recordShed(flight_, engine_->reserveId(), arr,
                           rt.deviceId(), dec.reason, ln.name);
                if (resil)
                    resil->noteFailure(next, clock.hostFree, "shed");
                continue;
            }
            if (resil)
                resil->noteAdmit(next);
            const double host_before = rt.hostTimeMs() * 1e-3;
            const std::uint64_t id = engine_->submit(ln.variant);
            const double transfer = rt.hostTimeMs() * 1e-3 - host_before;
            clock.hostFree = std::max(clock.hostFree, arr) + transfer;
            if (flight_) {
                flight_->event(id, "arrival", arr, rt.deviceId(),
                               "variant=" + ln.name);
                flight_->event(id, "admission", clock.hostFree,
                               rt.deviceId(),
                               "transfer_ms=" +
                                   obs::jsonNum(transfer * 1e3));
            }
            ln.queued.push_back(QueuedArrival{arr, id});
            rep.peakLaneQueueDepth =
                std::max(rep.peakLaneQueueDepth, ln.queued.size());
        }
    };

    /** Earliest pending arrival across lanes; +inf when exhausted. */
    auto next_arrival = [&]() {
        double t = std::numeric_limits<double>::infinity();
        for (Lane &ln : lanes)
            if (!ln.gen.done())
                t = std::min(t, ln.gen.peekSec());
        return t;
    };

    /** Per-lane dynamic state for the policy's decision points. */
    auto lane_views = [&]() {
        std::vector<LaneView> views(lanes.size());
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            views[i].queueDepth = lanes[i].queued.size();
            views[i].headArrivalSec =
                lanes[i].queued.empty()
                    ? 0.0
                    : lanes[i].queued.front().arrivalSec;
            views[i].moreArrivals = !lanes[i].gen.done();
            views[i].blocked =
                resil && resil->blocked(i, clock.hostFree);
        }
        return views;
    };

    // Timeout cancellation per lane (see runSingle's failfast).
    auto failfast = [&]() {
        if (!resil)
            return;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            Lane &ln = lanes[i];
            if (ln.deadlineSec <= 0.0)
                continue;
            while (!ln.queued.empty()) {
                const QueuedArrival head = ln.queued.front();
                const double est = policy->estimateServiceSec(i, 1);
                if (!resil->deadlineExpired(head.arrivalSec,
                                            ln.deadlineSec,
                                            clock.hostFree, est))
                    break;
                engine_->dropOldest(ln.variant, 1);
                ln.queued.pop_front();
                resil->recordTimeout(head.id, i, rt.deviceId(),
                                     head.arrivalSec, clock.hostFree);
                ++failed_total;
                any_deadline = true;
            }
        }
    };

    std::size_t served = 0;
    double last_completion = 0.0;
    std::vector<double> latencies_sec;
    std::vector<double> queue_delays_sec;
    latencies_sec.reserve(total);
    queue_delays_sec.reserve(total);
    std::size_t met = 0;

    while (served + shed_total + failed_total < total) {
        admit();
        failfast();
        const std::vector<LaneView> views = lane_views();
        int li = policy->pickLane(views);
        if (li < 0) {
            const double na = next_arrival();
            if (std::isfinite(na)) {
                // Idle (or wait-to-fill still filling): jump the host
                // clock to the next arrival.
                clock.hostFree = std::max(clock.hostFree, na);
                rt.advanceTo(clock.hostFree);
                continue;
            }
            li = oldestLane(views); // forced progress
            if (li < 0)
                break; // nothing queued, nothing arriving
        }
        Lane *lane = &lanes[static_cast<std::size_t>(li)];

        const std::size_t depth = lane->queued.size();
        rep.peakQueueDepth =
            std::max(rep.peakQueueDepth, engine_->queued());
        rep.peakLaneQueueDepth =
            std::max(rep.peakLaneQueueDepth, depth);

        if (resil) {
            std::size_t max_depth = 0;
            for (const Lane &ln : lanes)
                max_depth = std::max(max_depth, ln.queued.size());
            resil->tickBrownout(max_depth, brownout_bound,
                                clock.hostFree);
            engine_->setDuplicationScale(resil->duplicationScale());
        }

        std::size_t batch = policy->pickBatch(
            static_cast<std::size_t>(li),
            views[static_cast<std::size_t>(li)]);
        batch = std::max<std::size_t>(1, std::min(batch, depth));

        if (!cfg_.retainResults)
            engine_->clearResults();

        // Hedge the head on a second stream (see runSingle).
        const int s = clock.pickStream();
        const QueuedArrival head = lane->queued.front();
        bool hedged = false;
        BatchCost hedge_cost;
        int hs = -1;
        if (resil && resil->hedgeReady() && num_streams > 1) {
            const double waited = clock.hostFree - head.arrivalSec;
            if (waited > resil->hedgeDelaySec()) {
                hs = s == 0 ? 1 : 0;
                for (int i = 0; i < num_streams; ++i)
                    if (i != s &&
                        clock.streamFree[static_cast<std::size_t>(i)] <
                            clock.streamFree[static_cast<std::size_t>(
                                hs)])
                        hs = i;
                hedge_cost = engine_->hedgeOldest(lane->variant, hs);
                hedged = hedge_cost.requests > 0;
                if (hedged)
                    resil->recordHedge(head.id,
                                       static_cast<std::size_t>(li),
                                       rt.deviceId(), clock.hostFree,
                                       waited);
            }
        }

        const BatchCost cost =
            engine_->serveOldest(lane->variant, batch, s);
        const OpenLoopClock::Issued t = clock.issue(cost, s);
        double head_done = t.done;
        if (hedged) {
            const OpenLoopClock::Issued th =
                clock.issue(hedge_cost, hs);
            const bool hedge_won = th.done < t.done;
            head_done = std::min(t.done, th.done);
            resil->recordHedgeOutcome(head.id, rt.deviceId(),
                                      head_done, hedge_won);
            last_completion = std::max(last_completion, th.done);
        }
        rt.advanceTo(std::max(t.done, last_completion));

        if (obs::enabled())
            obs::tracer().complete(
                "tick/" + lane->name, "online", t.execStart,
                cost.execSec, rt.deviceId(), s,
                "\"batch\":" + std::to_string(batch));

        policy->observe(static_cast<std::size_t>(li), cost);
        batchSizes_.push_back(batch);
        ++rep.ticks;

        if (lane->deadlineSec > 0.0)
            any_deadline = true;
        for (std::size_t i = 0; i < batch; ++i) {
            const QueuedArrival req = lane->queued.front();
            lane->queued.pop_front();
            const double done_at = i == 0 ? head_done : t.done;
            const double lat = done_at - req.arrivalSec;
            const double delay =
                std::max(0.0, t.execStart - req.arrivalSec);
            latencies_sec.push_back(lat);
            queue_delays_sec.push_back(delay);
            latenciesMs_.push_back(lat * 1e3);
            queueDelaysMs_.push_back(delay * 1e3);
            lane->latencies.push_back(lat);
            if (lane->deadlineSec <= 0.0 || lat <= lane->deadlineSec)
                ++lane->met;
            if (resil)
                resil->observeLatency(lat);
            if (flight_) {
                flight_->event(req.id, "exec-start", t.execStart,
                               rt.deviceId(),
                               "stream=" + std::to_string(s));
                flight_->event(req.id, "completion", done_at,
                               rt.deviceId(),
                               "latency_ms=" + obs::jsonNum(lat * 1e3));
            }
            if (obs::enabled())
                obs::metrics()
                    .histogram("online.latency_ms")
                    .observe(lat * 1e3);
        }
        served += batch;
        if (resil)
            resil->noteSuccess(static_cast<std::size_t>(li), t.done);
        last_completion = std::max(last_completion, t.done);
    }

    // Percentiles/means via the shared tail; attainment judges each
    // request against its own variant's deadline, so the overall
    // numbers are recomputed from the per-lane tallies below.
    finalizeOnlineReport(rep, served, last_completion, latencies_sec,
                         queue_delays_sec, 0.0, shed_total,
                         failed_total);
    applyResilienceStats(rep, resil.get());
    if (any_deadline && !latencies_sec.empty()) {
        met = 0;
        for (const Lane &ln : lanes)
            met += ln.met;
        rep.sloAttainment = static_cast<double>(met) /
                            static_cast<double>(latencies_sec.size());
    }
    rep.admittedSloAttainment = rep.sloAttainment;
    if ((shed_total > 0 || failed_total > 0) && any_deadline) {
        std::size_t met_total = 0;
        for (const Lane &ln : lanes)
            met_total += ln.met;
        rep.sloAttainment =
            static_cast<double>(met_total) /
            static_cast<double>(served + shed_total + failed_total);
    }

    for (Lane &ln : lanes) {
        if (ln.latencies.empty() && ln.shed == 0)
            continue;
        VariantReport vr = makeVariantReport(ln.name, ln.latencies,
                                             ln.deadlineSec * 1e3);
        vr.requestsShed = ln.shed;
        rep.perVariant.push_back(std::move(vr));
    }

    fillCacheStats(rep, engine_->planCache().stats());
    rep.launches = rt.counters().total().launches - launches_before;
    return rep;
}

OnlineReport
OnlineServer::runSharded()
{
    OnlineReport rep;
    rep.offeredRatePerSec = cfg_.arrivalRatePerSec;
    rep.deadlineMs = cfg_.serving.deadlineMs;
    rep.devices = group_->size();
    latenciesMs_.clear();
    queueDelaysMs_.clear();
    batchSizes_.clear();

    const int devices = group_->size();

    // One lane per home shard, all sharing the run's ServingConfig —
    // and one shared cost model (the server's batcher), exactly the
    // pre-policy behavior where every device fed the same EWMAs.
    PolicySetup setup;
    setup.lanes.reserve(static_cast<std::size_t>(devices));
    for (int d = 0; d < devices; ++d)
        setup.lanes.push_back(laneSpecFrom(
            "dev" + std::to_string(d), cfg_.serving, cfg_));
    setup.sharedBatcher = &batcher_;
    const std::unique_ptr<SchedulerPolicy> policy =
        buildPolicy(std::move(setup));
    rep.policy = policy->name();
    const std::size_t total_requests = cfg_.arrivalTrace.empty()
                                           ? cfg_.numRequests
                                           : cfg_.arrivalTrace.size();
    if (total_requests == 0)
        return rep;

    LoadGenerator gen =
        cfg_.arrivalTrace.empty()
            ? LoadGenerator(cfg_.arrivalRatePerSec, cfg_.numRequests,
                            cfg_.arrivalSeed, cfg_.serving.mmpp,
                            cfg_.serving.diurnal)
            : LoadGenerator(cfg_.arrivalTrace);

    std::unique_ptr<ResilienceManager> resil;
    if (cfg_.serving.resilience.enabled) {
        resil = std::make_unique<ResilienceManager>(
            cfg_.serving.resilience,
            static_cast<std::size_t>(devices));
        resil->setFlightRecorder(flight_);
    }
    const double deadline_sec = cfg_.serving.deadlineMs * 1e-3;

    const int num_streams = std::max(1, cfg_.serving.numStreams);
    const double serial_frac =
        group_->device(0).spec().streamSerialFraction;

    // Multi-device open-loop timeline. The shared pieces stay shared:
    // one PCIe link admits arrivals (host_free) and the interconnect
    // serializes per directed link. Per device, an own driver thread
    // issues launches (issue_free), each stream runs one batch at a
    // time (stream_free), and the device's contention floor gates
    // overlapped execution (contend_free) — the same per-batch overlap
    // rule as the single-device loop, instantiated per device.
    std::vector<std::vector<double>> stream_free(
        static_cast<std::size_t>(devices),
        std::vector<double>(static_cast<std::size_t>(num_streams), 0.0));
    std::vector<double> issue_free(static_cast<std::size_t>(devices),
                                   0.0);
    std::vector<double> contend_free(static_cast<std::size_t>(devices),
                                     0.0);
    double host_free = 0.0;

    /** Arrival time and id of each queued request, FIFO per home
     *  device. */
    std::vector<std::deque<QueuedArrival>> queued_arrivals(
        static_cast<std::size_t>(devices));

    const std::uint64_t launches_before = group_->totalLaunches();
    const double ic_busy_before =
        group_->interconnect().totalBusySec();
    std::size_t shed_total = 0;
    std::size_t failed_total = 0;

    // Admit (or shed) arrivals the simulation has reached. Unlike the
    // single-device loop — whose one host thread both admits and
    // issues, so admission stalls behind issue overheads — the group's
    // admission thread is free while devices execute: anything that
    // arrived by the group clock (advanced to each batch completion)
    // is admitted, which is what lets queue depth build under load and
    // the adaptive batcher actually batch. The admission bound applies
    // to the whole session's backlog (one variant, one bound), judged
    // BEFORE routing — shed arrivals never sample and never route.
    auto admit = [&]() {
        while (!gen.done() &&
               gen.peekSec() <= std::max(host_free, group_->nowSec())) {
            const double arr = gen.next();
            rep.lastArrivalMs = arr * 1e3;
            LaneView view;
            view.queueDepth = sharded_->queued();
            view.headArrivalSec = arr;
            view.moreArrivals = !gen.done();
            const AdmitDecision dec = policy->admit(
                0, view, arr, std::max(host_free, group_->nowSec()));
            if (!dec.admit) {
                ++shed_total;
                recordShed(flight_, sharded_->reserveId(), arr, -1,
                           dec.reason, std::string());
                continue;
            }
            const ShardedSession::SubmitInfo info =
                sharded_->submitRouted();
            if (resil)
                resil->noteAdmit(
                    static_cast<std::size_t>(info.device));
            host_free = std::max(host_free, arr) + info.transferSec;
            if (flight_) {
                flight_->event(info.id, "arrival", arr, info.device);
                flight_->event(
                    info.id, "admission", host_free, info.device,
                    "transfer_ms=" +
                        obs::jsonNum(info.transferSec * 1e3));
            }
            queued_arrivals[static_cast<std::size_t>(info.device)]
                .push_back(QueuedArrival{arr, info.id});
            rep.peakLaneQueueDepth = std::max(
                rep.peakLaneQueueDepth,
                queued_arrivals[static_cast<std::size_t>(info.device)]
                    .size());
        }
    };

    // Scheduled device failures fire against the open-loop clock: the
    // session quarantines the device and re-routes its queue (charging
    // the structure re-sends on the admission thread), and this loop's
    // per-device arrival deque mirrors the move — the session's
    // re-route order IS the deque order, both FIFO by admission.
    sim::FaultInjector *fi = group_->faultInjector();
    auto check_failures = [&]() {
        if (!fi)
            return;
        for (int d = 0; d < devices; ++d) {
            if (sharded_->isDead(d) ||
                !fi->failureDue(
                    d, std::max(host_free, group_->nowSec())))
                continue;
            const double t_fail = fi->failureTimeSec(d);
            const std::vector<ShardedSession::Rerouted> moved =
                sharded_->quarantine(d, t_fail);
            auto &dq = queued_arrivals[static_cast<std::size_t>(d)];
            for (const ShardedSession::Rerouted &rr : moved) {
                QueuedArrival qa{};
                qa.id = rr.id;
                if (!dq.empty()) {
                    qa = dq.front();
                    dq.pop_front();
                }
                host_free += rr.transferSec;
                if (resil) {
                    // Retry with seeded capped backoff: a quarantine
                    // is a transient per-request failure. Exhausted
                    // budgets fail the request outright — its
                    // re-routed copy leaves the destination queue.
                    const ResilienceManager::RetryDecision rd =
                        resil->onFailure(
                            rr.id, static_cast<std::size_t>(rr.from),
                            rr.from, t_fail, "quarantine",
                            qa.attempts);
                    if (!rd.retry) {
                        sharded_->dropQueued(rr.id);
                        ++failed_total;
                        continue;
                    }
                    qa.attempts = rd.attempt;
                    qa.notBeforeSec = rd.notBeforeSec;
                }
                queued_arrivals[static_cast<std::size_t>(rr.to)]
                    .push_back(qa);
            }
            dq.clear();
            rep.requestsRerouted += moved.size();
            if (obs::enabled())
                obs::tracer().instant(
                    "device.failure", "online", t_fail, d, 0,
                    "\"rerouted\":" + std::to_string(moved.size()));
        }
        rep.devicesFailed = group_->size() - sharded_->aliveCount();
    };

    /** Per-device dynamic state for the policy (dead devices hold no
     *  queue — quarantine re-routed it — so they are never picked). */
    auto lane_views = [&]() {
        const double now = std::max(host_free, group_->nowSec());
        std::vector<LaneView> views(static_cast<std::size_t>(devices));
        for (int d = 0; d < devices; ++d) {
            const auto &q =
                queued_arrivals[static_cast<std::size_t>(d)];
            views[static_cast<std::size_t>(d)].queueDepth = q.size();
            views[static_cast<std::size_t>(d)].headArrivalSec =
                q.empty() ? 0.0 : q.front().arrivalSec;
            views[static_cast<std::size_t>(d)].moreArrivals =
                !gen.done();
            // An open breaker blocks the lane, and so does a head
            // still inside its retry-backoff hold.
            views[static_cast<std::size_t>(d)].blocked =
                resil &&
                (resil->blocked(static_cast<std::size_t>(d), now) ||
                 (!q.empty() && q.front().notBeforeSec > now));
        }
        return views;
    };

    // Timeout cancellation per device lane (see runSingle's failfast).
    auto failfast = [&]() {
        if (!resil || deadline_sec <= 0.0)
            return;
        const double now = std::max(host_free, group_->nowSec());
        for (int d = 0; d < devices; ++d) {
            if (sharded_->isDead(d))
                continue;
            auto &q = queued_arrivals[static_cast<std::size_t>(d)];
            while (!q.empty()) {
                const QueuedArrival head = q.front();
                const double est = policy->estimateServiceSec(
                    static_cast<std::size_t>(d), 1);
                if (!resil->deadlineExpired(head.arrivalSec,
                                            deadline_sec, now, est))
                    break;
                sharded_->dropOldestOn(d, 1);
                q.pop_front();
                resil->recordTimeout(head.id,
                                     static_cast<std::size_t>(d), d,
                                     head.arrivalSec, now);
                ++failed_total;
            }
        }
    };

    // Circuit breakers steer the router: open-breaker devices are
    // avoided by homeShard while any unmasked alive device remains.
    auto update_route_avoid = [&]() {
        if (!resil)
            return;
        const double now = std::max(host_free, group_->nowSec());
        std::vector<char> avoid(static_cast<std::size_t>(devices), 0);
        bool any = false;
        for (int d = 0; d < devices; ++d)
            if (resil->blocked(static_cast<std::size_t>(d), now)) {
                avoid[static_cast<std::size_t>(d)] = 1;
                any = true;
            }
        sharded_->setRouteAvoid(any ? std::move(avoid)
                                    : std::vector<char>{});
    };

    std::size_t served = 0;
    double last_completion = 0.0;
    std::vector<double> latencies_sec;
    std::vector<double> queue_delays_sec;
    latencies_sec.reserve(cfg_.numRequests);
    queue_delays_sec.reserve(cfg_.numRequests);

    while (served + shed_total + failed_total < total_requests) {
        admit();
        check_failures();
        update_route_avoid();
        failfast();
        const std::vector<LaneView> views = lane_views();
        int d = policy->pickLane(views);
        if (d < 0) {
            if (!gen.done()) {
                // Idle (or wait-to-fill still filling): jump the host
                // clock to the next arrival.
                host_free = std::max(host_free, gen.peekSec());
                group_->advanceTo(host_free);
                continue;
            }
            if (resil) {
                // Arrivals exhausted but heads may be backoff-held:
                // jump to the earliest hold expiry, then re-evaluate.
                const double now =
                    std::max(host_free, group_->nowSec());
                double wake = std::numeric_limits<double>::infinity();
                for (int dd = 0; dd < devices; ++dd) {
                    const auto &q =
                        queued_arrivals[static_cast<std::size_t>(dd)];
                    if (!q.empty() && q.front().notBeforeSec > now)
                        wake =
                            std::min(wake, q.front().notBeforeSec);
                }
                if (std::isfinite(wake)) {
                    host_free = std::max(host_free, wake);
                    group_->advanceTo(host_free);
                    continue;
                }
            }
            d = oldestLane(views); // forced progress (breaker probe)
            if (d < 0)
                break; // nothing queued, nothing arriving
        }
        auto &q = queued_arrivals[static_cast<std::size_t>(d)];
        const std::size_t depth = q.size();
        rep.peakQueueDepth =
            std::max(rep.peakQueueDepth, sharded_->queued());
        rep.peakLaneQueueDepth =
            std::max(rep.peakLaneQueueDepth, depth);

        if (resil) {
            // Admission bounds the whole session's backlog (judged
            // before routing), so brownout pressure is the TOTAL
            // queued fraction — a per-lane max would never cross the
            // watermark once the bound spreads across devices.
            std::size_t total_depth = 0;
            for (const auto &dq : queued_arrivals)
                total_depth += dq.size();
            resil->tickBrownout(total_depth, cfg_.serving.maxQueueDepth,
                                std::max(host_free, group_->nowSec()));
            sharded_->setDuplicationScale(resil->duplicationScale());
        }

        std::size_t batch =
            policy->pickBatch(static_cast<std::size_t>(d),
                              views[static_cast<std::size_t>(d)]);
        batch = std::max<std::size_t>(1, std::min(batch, depth));

        if (!cfg_.retainResults)
            sharded_->clearResults();

        auto &streams = stream_free[static_cast<std::size_t>(d)];
        int s = 0;
        for (int i = 1; i < num_streams; ++i)
            if (streams[static_cast<std::size_t>(i)] <
                streams[static_cast<std::size_t>(s)])
                s = i;

        // Hedge: re-issue the waiting head on a second alive device
        // before serving the primary batch; the first completion wins
        // and the loser is an audited discard. hedgeOldestOn stores no
        // result, so outputs are bit-identical to the unhedged run.
        const QueuedArrival head = q.front();
        bool hedged = false;
        ShardBatch hb;
        int hedge_dev = -1;
        int hedge_stream = 0;
        if (resil && resil->hedgeReady() &&
            sharded_->aliveCount() > 1) {
            const double now = std::max(host_free, group_->nowSec());
            const double waited = now - head.arrivalSec;
            if (waited > resil->hedgeDelaySec()) {
                // Deterministic backup pick: alive, not the primary,
                // shallowest queue, ties to the lowest device id.
                for (int dd = 0; dd < devices; ++dd) {
                    if (dd == d || sharded_->isDead(dd))
                        continue;
                    if (hedge_dev < 0 ||
                        queued_arrivals[static_cast<std::size_t>(dd)]
                                .size() <
                            queued_arrivals[static_cast<std::size_t>(
                                                hedge_dev)]
                                .size())
                        hedge_dev = dd;
                }
                if (hedge_dev >= 0) {
                    auto &hstreams =
                        stream_free[static_cast<std::size_t>(
                            hedge_dev)];
                    for (int i = 1; i < num_streams; ++i)
                        if (hstreams[static_cast<std::size_t>(i)] <
                            hstreams[static_cast<std::size_t>(
                                hedge_stream)])
                            hedge_stream = i;
                    hb = sharded_->hedgeOldestOn(d, hedge_dev,
                                                 hedge_stream);
                    hedged = hb.cost.requests > 0;
                    if (hedged)
                        resil->recordHedge(head.id,
                                           static_cast<std::size_t>(d),
                                           hedge_dev, now, waited);
                }
            }
        }

        const ShardBatch sb = sharded_->serveOldestOn(d, batch, s);
        const double issue_start =
            std::max(issue_free[static_cast<std::size_t>(d)], host_free);
        const double issue_done = issue_start + sb.cost.overheadSec;
        issue_free[static_cast<std::size_t>(d)] = issue_done;

        // Halo rows must be resident before the batch's kernels start;
        // rows owned by failed shards re-gather from the host store
        // over this device's PCIe lanes instead of the interconnect.
        double comm_done = issue_done;
        for (const auto &[owner, bytes] : sb.haloBytesByOwner) {
            comm_done = std::max(comm_done,
                                 group_->interconnect().transfer(
                                     owner, d, bytes, issue_done));
            rep.haloBytes += bytes;
        }
        if (sb.hostFallbackBytes > 0.0) {
            sim::Runtime &frt = group_->device(d);
            const double t = graph::hostTransferSec(
                sb.hostFallbackBytes, frt.spec());
            frt.hostOverhead(t);
            comm_done = std::max(comm_done, issue_done + t);
        }

        const double exec_start = std::max(
            comm_done,
            std::max(streams[static_cast<std::size_t>(s)],
                     contend_free[static_cast<std::size_t>(d)]));
        const double exec_done = exec_start + sb.cost.execSec;
        streams[static_cast<std::size_t>(s)] = exec_done;
        contend_free[static_cast<std::size_t>(d)] =
            exec_start + serial_frac * sb.cost.execSec;

        // All-gather the batch's outputs onto the root (device 0
        // unless it has been quarantined, then the lowest survivor).
        int root = 0;
        while (root < devices && sharded_->isDead(root))
            ++root;
        if (root >= devices)
            root = d;
        const double done =
            d != root ? group_->interconnect().transfer(
                            d, root, sb.gatherBytes, exec_done)
                      : exec_done;

        // The hedge copy runs through the SAME per-device clock
        // machinery on its backup device: issue, halo, contention,
        // gather to the root. First completion wins the race.
        double head_done = done;
        if (hedged) {
            const std::size_t hd =
                static_cast<std::size_t>(hedge_dev);
            auto &hstreams = stream_free[hd];
            const double h_issue_start =
                std::max(issue_free[hd], host_free);
            const double h_issue_done =
                h_issue_start + hb.cost.overheadSec;
            issue_free[hd] = h_issue_done;
            double h_comm_done = h_issue_done;
            for (const auto &[owner, bytes] : hb.haloBytesByOwner) {
                h_comm_done =
                    std::max(h_comm_done,
                             group_->interconnect().transfer(
                                 owner, hedge_dev, bytes,
                                 h_issue_done));
                rep.haloBytes += bytes;
            }
            if (hb.hostFallbackBytes > 0.0) {
                sim::Runtime &hrt = group_->device(hedge_dev);
                const double ht = graph::hostTransferSec(
                    hb.hostFallbackBytes, hrt.spec());
                hrt.hostOverhead(ht);
                h_comm_done = std::max(h_comm_done, h_issue_done + ht);
            }
            const double h_exec_start = std::max(
                h_comm_done,
                std::max(hstreams[static_cast<std::size_t>(
                             hedge_stream)],
                         contend_free[hd]));
            const double h_exec_done = h_exec_start + hb.cost.execSec;
            hstreams[static_cast<std::size_t>(hedge_stream)] =
                h_exec_done;
            contend_free[hd] =
                h_exec_start + serial_frac * hb.cost.execSec;
            const double hedge_done =
                hedge_dev != root
                    ? group_->interconnect().transfer(
                          hedge_dev, root, hb.gatherBytes,
                          h_exec_done)
                    : h_exec_done;
            const bool hedge_won = hedge_done < done;
            head_done = std::min(done, hedge_done);
            resil->recordHedgeOutcome(head.id, hedge_dev, head_done,
                                      hedge_won);
            if (obs::enabled())
                obs::tracer().complete(
                    "tick/hedge", "online", h_exec_start,
                    hb.cost.execSec, hedge_dev, hedge_stream,
                    "\"batch\":1");
            last_completion = std::max(last_completion, hedge_done);
        }
        group_->advanceTo(std::max(done, last_completion));

        const double halo_total = [&] {
            double b = 0.0;
            for (const auto &[owner, bytes] : sb.haloBytesByOwner)
                b += bytes;
            return b;
        }();
        if (obs::enabled()) {
            if (comm_done > issue_done)
                obs::tracer().complete(
                    "halo", "comm", issue_done, comm_done - issue_done,
                    d, s, "\"bytes\":" + obs::jsonNum(halo_total));
            obs::tracer().complete(
                "tick", "online", exec_start, sb.cost.execSec, d, s,
                "\"batch\":" + std::to_string(batch));
            if (d != root)
                obs::tracer().complete(
                    "gather", "comm", exec_done, done - exec_done, d, s,
                    "\"bytes\":" + obs::jsonNum(sb.gatherBytes));
        }

        policy->observe(static_cast<std::size_t>(d), sb.cost);
        batchSizes_.push_back(batch);
        ++rep.ticks;

        for (std::size_t i = 0; i < batch; ++i) {
            const QueuedArrival req = q.front();
            q.pop_front();
            const double done_at = i == 0 ? head_done : done;
            const double lat = done_at - req.arrivalSec;
            const double delay =
                std::max(0.0, exec_start - req.arrivalSec);
            latencies_sec.push_back(lat);
            queue_delays_sec.push_back(delay);
            latenciesMs_.push_back(lat * 1e3);
            queueDelaysMs_.push_back(delay * 1e3);
            if (resil)
                resil->observeLatency(lat);
            if (flight_) {
                if (comm_done > issue_done)
                    flight_->event(req.id, "halo", comm_done, d,
                                   "bytes=" + obs::jsonNum(halo_total));
                flight_->event(req.id, "exec-start", exec_start, d,
                               "stream=" + std::to_string(s));
                if (d != root)
                    flight_->event(
                        req.id, "all-gather", done, d,
                        "bytes=" + obs::jsonNum(sb.gatherBytes));
                flight_->event(req.id, "completion", done_at, d,
                               "latency_ms=" + obs::jsonNum(lat * 1e3));
            }
            if (obs::enabled())
                obs::metrics()
                    .histogram("online.latency_ms")
                    .observe(lat * 1e3);
        }
        served += batch;
        if (resil)
            resil->noteSuccess(static_cast<std::size_t>(d), done);
        last_completion = std::max(last_completion, done);
    }

    finalizeOnlineReport(rep, served, last_completion, latencies_sec,
                         queue_delays_sec, cfg_.serving.deadlineMs,
                         shed_total, failed_total);
    applyResilienceStats(rep, resil.get());

    rep.interconnectMs =
        (group_->interconnect().totalBusySec() - ic_busy_before) * 1e3;
    fillCacheStats(rep, sharded_->planCache().stats());
    rep.launches = group_->totalLaunches() - launches_before;
    return rep;
}

// ------------------------------------------------------------ absorb helper

void
absorbOnlineReport(obs::Registry &reg, const OnlineReport &report,
                   const std::string &prefix)
{
    absorbReport(reg, report, prefix);
    reg.gauge(prefix + ".requests_shed")
        .set(static_cast<double>(report.requestsShed));
    reg.gauge(prefix + ".shed_fraction").set(report.shedFraction);
    reg.gauge(prefix + ".admitted_slo_attainment")
        .set(report.admittedSloAttainment);
    reg.gauge(prefix + ".peak_queue_depth")
        .set(static_cast<double>(report.peakQueueDepth));
    reg.gauge(prefix + ".peak_lane_queue_depth")
        .set(static_cast<double>(report.peakLaneQueueDepth));
    reg.gauge(prefix + ".requests_retried")
        .set(static_cast<double>(report.requestsRetried));
    reg.gauge(prefix + ".requests_hedged")
        .set(static_cast<double>(report.requestsHedged));
    reg.gauge(prefix + ".hedge_wins")
        .set(static_cast<double>(report.hedgeWins));
    reg.gauge(prefix + ".requests_timed_out")
        .set(static_cast<double>(report.requestsTimedOut));
    reg.gauge(prefix + ".requests_failed")
        .set(static_cast<double>(report.requestsFailed));
    reg.gauge(prefix + ".breaker_opens")
        .set(static_cast<double>(report.breakerOpens));
    reg.gauge(prefix + ".brownout_ticks")
        .set(static_cast<double>(report.brownoutTicks));
}

} // namespace hector::serve
