#include "serve/scheduler_policy.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

namespace hector::serve
{

// ---------------------------------------------------------- AdaptiveBatcher

AdaptiveBatcher::AdaptiveBatcher(std::size_t max_batch, double deadline_sec,
                                 double alpha, double budget_fraction,
                                 bool bounded_queue)
    : maxBatch_(std::max<std::size_t>(1, max_batch)),
      deadlineSec_(deadline_sec), alpha_(alpha),
      budgetFraction_(budget_fraction), boundedQueue_(bounded_queue)
{
    if (alpha_ <= 0.0 || alpha_ > 1.0)
        throw std::runtime_error("AdaptiveBatcher: alpha must be in (0, 1]");
}

std::size_t
AdaptiveBatcher::pick(std::size_t queue_depth) const
{
    if (queue_depth == 0)
        return 0;
    // Saturation: the queue alone fills a maximal batch. With an
    // UNBOUNDED queue, amortizing launches over maxBatch requests is
    // the throughput-optimal choice, and deadline-agnostic is correct
    // — the backlog has already blown every deadline. With admission
    // control bounding the queue (boundedQueue_), that premise is
    // false: shedding keeps queueing delay finite, admitted requests
    // are still servable within SLO, so the deadline-budget cap below
    // stays active even at saturation.
    if (!boundedQueue_ && queue_depth >= maxBatch_)
        return maxBatch_;
    // Serve everything queued now; waiting to fill the batch only
    // adds fill-wait latency in an open loop...
    std::size_t b = std::min(queue_depth, maxBatch_);
    // ... unless the cost model predicts the batch itself would eat
    // the queued requests' SLO headroom: cap so modeled service time
    // (EWMA overhead + b * EWMA per-request exec) stays within the
    // deadline budget.
    if (observed_ && deadlineSec_ > 0.0 && ewmaExecPerReqSec_ > 0.0) {
        const double budget =
            budgetFraction_ * deadlineSec_ - ewmaOverheadSec_;
        const std::size_t cap =
            budget <= ewmaExecPerReqSec_
                ? 1
                : static_cast<std::size_t>(budget / ewmaExecPerReqSec_);
        b = std::min(b, std::max<std::size_t>(1, cap));
    }
    return b;
}

void
AdaptiveBatcher::observe(const BatchCost &cost)
{
    if (cost.requests == 0)
        return;
    const double per_req =
        cost.execSec / static_cast<double>(cost.requests);
    if (!observed_) {
        ewmaOverheadSec_ = cost.overheadSec;
        ewmaExecPerReqSec_ = per_req;
        observed_ = true;
        return;
    }
    ewmaOverheadSec_ += alpha_ * (cost.overheadSec - ewmaOverheadSec_);
    ewmaExecPerReqSec_ += alpha_ * (per_req - ewmaExecPerReqSec_);
}

// ---------------------------------------------------------- SchedulerPolicy

SchedulerPolicy::SchedulerPolicy(PolicySetup setup)
    : lanes_(std::move(setup.lanes)), shared_(setup.sharedBatcher)
{
    if (lanes_.empty())
        throw std::invalid_argument(
            "SchedulerPolicy: at least one lane is required");
    if (!shared_) {
        owned_.reserve(lanes_.size());
        for (const LaneSpec &spec : lanes_)
            owned_.emplace_back(
                spec.maxBatch, spec.deadlineSec, spec.ewmaAlpha,
                spec.budgetFraction,
                spec.maxQueueDepth > 0 && spec.shed != ShedMode::None);
    }
}

AdaptiveBatcher &
SchedulerPolicy::batcherFor(std::size_t lane)
{
    return shared_ ? *shared_ : owned_.at(lane);
}

const AdaptiveBatcher &
SchedulerPolicy::batcherFor(std::size_t lane) const
{
    return shared_ ? *shared_ : owned_.at(lane);
}

double
SchedulerPolicy::edfKey(const LaneSpec &spec, const LaneView &view)
{
    return spec.deadlineSec > 0.0
               ? view.headArrivalSec + spec.deadlineSec
               : std::numeric_limits<double>::infinity();
}

AdmitDecision
SchedulerPolicy::admit(std::size_t lane, const LaneView &view,
                       double arrival_sec, double now_sec) const
{
    const LaneSpec &spec = lanes_.at(lane);
    if (spec.shed == ShedMode::None)
        return {};
    if (spec.maxQueueDepth > 0 && view.queueDepth >= spec.maxQueueDepth)
        return {false, "queue-full"};
    if (spec.shed == ShedMode::DeadlineInfeasible &&
        spec.deadlineSec > 0.0) {
        // The request completes no earlier than the backlog ahead of
        // it plus its own service time, starting from when the host
        // is actually free to serve.
        const double service =
            estimateServiceSec(lane, view.queueDepth + 1);
        const double start = std::max(now_sec, arrival_sec);
        if (service > 0.0 &&
            start + service > arrival_sec + spec.deadlineSec)
            return {false, "deadline-infeasible"};
    }
    return {};
}

void
SchedulerPolicy::observe(std::size_t lane, const BatchCost &cost)
{
    batcherFor(lane).observe(cost);
}

double
SchedulerPolicy::estimateServiceSec(std::size_t lane, std::size_t n) const
{
    const AdaptiveBatcher &b = batcherFor(lane);
    if (!b.calibrated() || n == 0)
        return 0.0;
    // n requests drain in ceil(n / maxBatch) batches, each paying one
    // launch overhead; execution is per request.
    const double batches =
        std::ceil(static_cast<double>(n) /
                  static_cast<double>(b.maxBatch()));
    return batches * b.ewmaOverheadSec() +
           static_cast<double>(n) * b.ewmaExecPerRequestSec();
}

// --------------------------------------------------------- built-in policies

namespace
{

/**
 * Wait-to-fill fixed batching: a lane becomes eligible once its queue
 * reaches fixedBatch (or its arrivals ran out); eligible lanes are
 * ordered EDF exactly like the adaptive policy, so the two differ only
 * in batch sizing — the historical !adaptive behavior of all three
 * tick loops, bit-identically.
 */
class FixedFillPolicy : public SchedulerPolicy
{
  public:
    using SchedulerPolicy::SchedulerPolicy;
    const char *name() const override { return "fixed"; }

    int
    pickLane(const std::vector<LaneView> &lanes) const override
    {
        int best = -1;
        double best_key = 0.0;
        double best_arr = 0.0;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            const LaneView &view = lanes[i];
            if (view.queueDepth == 0 || view.blocked)
                continue;
            if (view.queueDepth < lane(i).fixedBatch &&
                view.moreArrivals)
                continue; // still filling
            const double key = edfKey(lane(i), view);
            if (best < 0 || key < best_key ||
                (key == best_key && view.headArrivalSec < best_arr)) {
                best = static_cast<int>(i);
                best_key = key;
                best_arr = view.headArrivalSec;
            }
        }
        return best;
    }

    std::size_t
    pickBatch(std::size_t l, const LaneView &view) const override
    {
        return std::min(view.queueDepth, lane(l).fixedBatch);
    }
};

/**
 * Deadline-aware adaptive batching with EDF lane interleaving: among
 * lanes with queued work, the head-of-line request with the earliest
 * absolute deadline (arrival + its lane's SLO) wins the tick; lanes
 * without a deadline rank behind every deadline lane and compete on
 * arrival order; ties go to the lower lane index. Batch sizes come
 * from the lane's AdaptiveBatcher. The historical adaptive behavior
 * of all three tick loops, bit-identically.
 */
class AdaptiveEdfPolicy : public SchedulerPolicy
{
  public:
    using SchedulerPolicy::SchedulerPolicy;
    const char *name() const override { return "adaptive"; }

    int
    pickLane(const std::vector<LaneView> &lanes) const override
    {
        int best = -1;
        double best_key = 0.0;
        double best_arr = 0.0;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            const LaneView &view = lanes[i];
            if (view.queueDepth == 0 || view.blocked)
                continue;
            const double key = edfKey(lane(i), view);
            if (best < 0 || key < best_key ||
                (key == best_key && view.headArrivalSec < best_arr)) {
                best = static_cast<int>(i);
                best_key = key;
                best_arr = view.headArrivalSec;
            }
        }
        return best;
    }

    std::size_t
    pickBatch(std::size_t l, const LaneView &view) const override
    {
        return batcher(l).pick(view.queueDepth);
    }
};

/**
 * Priority tiers + weighted-fair sharing within a tier. Among lanes
 * with queued work: the lowest tier wins outright (interactive tenants
 * preempt batch tenants); within a tier the lane with the smallest
 * weight-normalized served count (served / weight) is next, so served
 * throughput converges to the configured weight ratio whenever lanes
 * stay backlogged; EDF (then arrival, then lane index) breaks ties.
 * Batch sizing is the lane's AdaptiveBatcher, deadline-aware even at
 * saturation when the lane's queue is bounded.
 */
class WeightedFairPolicy : public SchedulerPolicy
{
  public:
    explicit WeightedFairPolicy(PolicySetup setup)
        : SchedulerPolicy(std::move(setup)), served_(numLanes(), 0)
    {}
    const char *name() const override { return "wfq"; }

    int
    pickLane(const std::vector<LaneView> &lanes) const override
    {
        int best = -1;
        int best_tier = 0;
        double best_wserved = 0.0;
        double best_key = 0.0;
        double best_arr = 0.0;
        for (std::size_t i = 0; i < lanes.size(); ++i) {
            const LaneView &view = lanes[i];
            if (view.queueDepth == 0 || view.blocked)
                continue;
            const LaneSpec &spec = lane(i);
            const double wserved =
                static_cast<double>(served_[i]) / spec.weight;
            const double key = edfKey(spec, view);
            const bool better =
                best < 0 || spec.tier < best_tier ||
                (spec.tier == best_tier &&
                 (wserved < best_wserved ||
                  (wserved == best_wserved &&
                   (key < best_key ||
                    (key == best_key &&
                     view.headArrivalSec < best_arr)))));
            if (better) {
                best = static_cast<int>(i);
                best_tier = spec.tier;
                best_wserved = wserved;
                best_key = key;
                best_arr = view.headArrivalSec;
            }
        }
        return best;
    }

    std::size_t
    pickBatch(std::size_t l, const LaneView &view) const override
    {
        return batcher(l).pick(view.queueDepth);
    }

    void
    observe(std::size_t l, const BatchCost &cost) override
    {
        SchedulerPolicy::observe(l, cost);
        served_[l] += cost.requests;
    }

  private:
    std::vector<std::size_t> served_;
};

std::map<std::string, PolicyFactory> &
policyRegistry()
{
    static std::map<std::string, PolicyFactory> reg = [] {
        std::map<std::string, PolicyFactory> m;
        m["fixed"] = [](const PolicySetup &s) {
            return std::unique_ptr<SchedulerPolicy>(
                new FixedFillPolicy(s));
        };
        m["adaptive"] = [](const PolicySetup &s) {
            return std::unique_ptr<SchedulerPolicy>(
                new AdaptiveEdfPolicy(s));
        };
        m["wfq"] = [](const PolicySetup &s) {
            return std::unique_ptr<SchedulerPolicy>(
                new WeightedFairPolicy(s));
        };
        return m;
    }();
    return reg;
}

} // namespace

// ----------------------------------------------------------------- registry

bool
registerSchedulerPolicy(const std::string &name, PolicyFactory factory)
{
    auto &reg = policyRegistry();
    const bool fresh = reg.find(name) == reg.end();
    reg[name] = std::move(factory);
    return fresh;
}

bool
schedulerPolicyRegistered(const std::string &name)
{
    const auto &reg = policyRegistry();
    return reg.find(name) != reg.end();
}

std::unique_ptr<SchedulerPolicy>
makeSchedulerPolicy(const std::string &name, PolicySetup setup)
{
    const auto &reg = policyRegistry();
    const auto it = reg.find(name);
    if (it == reg.end())
        throw std::invalid_argument(
            "makeSchedulerPolicy: unknown policy '" + name + "'");
    return it->second(setup);
}

std::vector<std::string>
schedulerPolicyNames()
{
    std::vector<std::string> names;
    for (const auto &[name, factory] : policyRegistry())
        names.push_back(name);
    return names;
}

} // namespace hector::serve
