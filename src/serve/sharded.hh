/**
 * @file
 * Multi-device sharded serving.
 *
 * A ShardedSession is the multi-device counterpart of ServingSession:
 * one model, one host-resident graph, N simulated devices. At
 * construction the host graph is cut into N shards by the
 * deterministic edge-cut partitioner (graph::partitionGraph) and the
 * replicated weights are broadcast over the modeled interconnect. Each
 * submitted request is routed to its *home shard* — the device owning
 * the plurality of its sampled subgraph's vertices — and served there
 * whole, so per-request arithmetic never crosses a device boundary and
 * results stay bit-identical to the single-device path (the same
 * batch-invariance property micro-batching rests on). What scaling out
 * costs is modeled explicitly:
 *
 *  - halo exchange: feature rows of subgraph vertices the home shard
 *    does not own travel owner -> home over the interconnect before
 *    the batch's kernels may start;
 *  - result gather: every batch's outputs travel home -> device 0
 *    (the all-gather root) after execution.
 *
 * The feature store is *sharded and device-resident*: at construction
 * each device bulk-loads its shard's feature rows over its own PCIe
 * lanes (charged once), so a request's PCIe cost is only its subgraph
 * structure — home-owned rows are gathered from device memory by the
 * batch-assembly kernel, remote rows are the halo above. In drain()
 * each device's queued structure transfers serialize on its own DMA
 * path while devices overlap (pendingHostSec_); the online loop
 * instead admits every arrival on the host's single admission thread,
 * so there structure transfers serialize globally (see
 * OnlineServer::runSharded).
 *
 * Compute parallelizes the same way: each device runs its own
 * StreamScheduler (own driver thread, own streams) on the shared
 * virtual clock, which is where the multi-device speedup comes from.
 */

#ifndef HECTOR_SERVE_SHARDED_HH
#define HECTOR_SERVE_SHARDED_HH

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "graph/partition.hh"
#include "obs/flight_recorder.hh"
#include "serve/session.hh"
#include "sim/device_group.hh"

namespace hector::serve
{

/** Serving-time knobs of a sharded session. */
struct ShardedConfig
{
    /** Per-device serving knobs (maxBatch, numStreams, sample, ...). */
    ServingConfig serving;
    /**
     * Partitioner knobs; numShards is overridden by the device-group
     * size, so only tolerance and seed matter here.
     */
    graph::PartitionSpec partition;
};

/** One sharded drain cycle's metrics. */
struct ShardedReport : ServingReport
{
    int devices = 1;
    /** Requests served by each device this cycle. */
    std::vector<std::size_t> perDeviceRequests;
    /** Edge cut of the partition (whole graph, not per cycle). */
    std::int64_t cutEdges = 0;
    /** Cut edges / total edges of the host graph. */
    double cutRatio = 0.0;
    /** Halo-exchange bytes moved for this cycle's batches. */
    double haloBytes = 0.0;
    /** Result all-gather bytes moved to device 0 this cycle. */
    double gatherBytes = 0.0;
    /** Link-seconds the interconnect was busy this cycle, as ms. */
    double interconnectMs = 0.0;
    /** Devices quarantined as failed by the end of the cycle. */
    int devicesFailed = 0;
    /** Requests re-executed on survivors after a mid-cycle device
     *  failure or a detected transient corruption. */
    std::size_t requestsReplayed = 0;
    /** Requests re-routed off failed devices (quarantine + in-cycle). */
    std::size_t requestsRerouted = 0;
    /** Redundant (dual-issue) batch executions this cycle. */
    std::uint64_t duplicatesIssued = 0;
    /** Output-checksum mismatches the redundant executions caught. */
    std::uint64_t transientsDetected = 0;
    /** Redundant + replay execution seconds as a percentage of the
     *  primary execution seconds: what detection coverage costs. */
    double duplicationOverheadPct = 0.0;
};

/** Accounting of one micro-batch served by serveOldestOn(). */
struct ShardBatch
{
    /** Host-issue overhead + device execution, like BatchCost. */
    BatchCost cost;
    /** Home device the batch ran on. */
    int device = 0;
    /** Halo bytes owed per owner shard: (owner, bytes) pairs. Only
     *  surviving owners appear; rows owned by failed shards fall back
     *  to the host store (hostFallbackBytes). */
    std::vector<std::pair<int, double>> haloBytesByOwner;
    /** Output bytes to all-gather onto device 0 (0 when home is 0). */
    double gatherBytes = 0.0;
    /** Halo rows whose owner shard has failed, re-gathered from the
     *  host feature store over PCIe instead of the interconnect. */
    double hostFallbackBytes = 0.0;
};

class ShardedSession
{
  public:
    /**
     * @param g             host-resident full graph (outlives session)
     * @param host_features host-resident node features, [nodes, din]
     * @param model_source  model in the textual DSL (model_sources.hh)
     * @param group         simulated devices; group.size() shards
     *
     * Seeding matches ServingSession exactly (weights first, then the
     * request-sampling stream), so a ShardedSession with the same
     * config serves the identical request stream with identical
     * weights — the basis of the golden determinism tests.
     */
    ShardedSession(const graph::HeteroGraph &g,
                   tensor::Tensor host_features, std::string model_source,
                   ShardedConfig cfg, sim::DeviceGroup &group);

    /** Routing outcome of one submit. */
    struct SubmitInfo
    {
        std::uint64_t id = 0;
        /** Home device the request was routed to. */
        int device = 0;
        /** Host-transfer seconds this submit charged (structure
         *  bytes over the home device's PCIe lanes; 0 for externally
         *  prepared requests). */
        double transferSec = 0.0;
    };

    /**
     * Sample a neighborhood query (same seeded stream as the
     * single-device session), pay its host transfer, and enqueue it on
     * its home shard. Returns the id and the routing decision.
     */
    SubmitInfo submitRouted();

    /** submitRouted() discarding the routing info. */
    std::uint64_t submit() { return submitRouted().id; }

    /** Consume one request id without sampling, routing, or enqueuing
     *  (shed arrivals keep a unique flight-recorder identity). */
    std::uint64_t reserveId() { return nextId_++; }

    /** Enqueue an externally prepared request; routes like submit(). */
    SubmitInfo submitRouted(graph::Minibatch mb, tensor::Tensor feature);

    /** Serve every queued request on every device; cycle metrics. */
    ShardedReport drain();

    /**
     * Serve the min(n, queuedOn(device)) oldest requests of @p device
     * as ONE micro-batch on @p stream, retaining results. Like
     * ServingSession::serveOldest, no timeline is imposed: the online
     * layer owns the clock and charges the returned halo/gather bytes
     * on the group interconnect itself. Also like serveOldest, the
     * device's transfer bookkeeping is rebased after the pop, so a
     * later drain() charges only the remaining requests' transfers.
     */
    ShardBatch serveOldestOn(int device, std::size_t n, int stream = 0);

    /**
     * Fail-fast cancel the min(n, queuedOn(device)) oldest requests of
     * @p device without serving them (timeout cancellation); returns
     * the dropped ids in queue order. The device's transfer
     * bookkeeping is rebased exactly as if the requests were served,
     * so later batches charge only their own submit transfers.
     */
    std::vector<std::uint64_t> dropOldestOn(int device, std::size_t n);

    /**
     * Remove one queued request by id (retry-budget exhaustion after a
     * re-route); true when found. Mid-queue removal is safe: submitSec
     * stays non-decreasing along the queue and the request's submit
     * transfer already happened, so no rebase is needed.
     */
    bool dropQueued(std::uint64_t id);

    /**
     * Re-issue the oldest queued request of @p from as a hedge
     * batch-of-1 on alive device @p to (stream @p stream) WITHOUT
     * popping it from @p from's queue and without storing a result —
     * the primary copy remains authoritative, so outputs are
     * bit-identical to the unhedged run by construction; only the
     * modeled timeline can move. The returned ShardBatch carries the
     * backup's exec cost, the structure re-send over @p to's PCIe
     * lanes (transferSec-style, folded into overheadSec), and @p to's
     * halo/gather bytes for the caller's clock. No ASPIS sandwich: the
     * hedge IS the backup path. Returns an empty batch when @p from
     * has nothing queued.
     */
    ShardBatch hedgeOldestOn(int from, int to, int stream = 0);

    /** Drop all retained request results (bounded-memory serving). */
    void clearResults() { results_.clear(); }

    /** Output of a served request; nullptr until served (drain()
     *  retains results for one cycle, like the single-device path). */
    const tensor::Tensor *result(std::uint64_t id) const;

    /// @name Fault tolerance.
    ///
    /// A device failure (sim::FaultInjector attached to the group, or
    /// an explicit quarantine() call) removes the device from service:
    /// its queued requests are re-routed to surviving shards — the
    /// subgraph structure is re-sent over the survivor's PCIe lanes,
    /// and at serve time any halo row the dead shard owned is
    /// re-gathered from the host feature store instead of the
    /// interconnect — and drain() replays work the failure lost
    /// mid-cycle on the survivors. Recovered outputs are bit-identical
    /// to the fault-free run (re-execution of the same requests with
    /// the same weights; the batch-invariance property). With every
    /// device failed, serving throws rather than hanging or dividing
    /// by zero.
    /// @{

    /** One re-routed request of a quarantine. */
    struct Rerouted
    {
        std::uint64_t id = 0;
        int from = 0;
        int to = 0;
        /** Structure re-send charged on the new home's PCIe lanes. */
        double transferSec = 0.0;
    };

    /**
     * Quarantine @p device at virtual time @p t_sec: mark it failed
     * (firing the injector's failure event if one is pending) and
     * re-route its queued requests to surviving shards, preserving
     * request ids and FIFO order. Throws when requests are queued and
     * no survivor remains. Idempotent once the device is dead.
     */
    std::vector<Rerouted> quarantine(int device, double t_sec);

    bool isDead(int device) const;
    int aliveCount() const;

    /// @}

    /**
     * Attach a per-request flight recorder: enqueue events are
     * recorded at submit, batch-join/exec/halo/gather/completion
     * events during drain()/serveOldestOn(). nullptr detaches. The
     * recorder must outlive the session or be detached.
     */
    void setFlightRecorder(obs::FlightRecorder *fr) { flight_ = fr; }
    obs::FlightRecorder *flightRecorder() const { return flight_; }

    /**
     * Devices the resilience layer's circuit breakers want routing to
     * avoid (index -> avoid). Softer than quarantine: homeShard skips
     * avoided devices while at least one alive device is not avoided,
     * and ignores the mask entirely otherwise (routing must always
     * make progress). Empty vector clears the mask.
     */
    void setRouteAvoid(std::vector<char> avoid);

    /** Scale applied to cfg.serving.duplicationFraction by the
     *  brownout path (0 disables ASPIS dual-issue, 1 is nominal). */
    void setDuplicationScale(double scale) { dupScale_ = scale; }
    double duplicationScale() const { return dupScale_; }

    const graph::Partition &partition() const { return partition_; }
    PlanCache &planCache() { return cache_; }
    models::WeightMap &weights() { return weights_; }
    const ShardedConfig &config() const { return cfg_; }
    sim::DeviceGroup &group() { return group_; }

    std::size_t queued() const;
    std::size_t queuedOn(int device) const;

  private:
    /** One cached-plan lookup through the shared PlanCompiler. */
    std::shared_ptr<const core::CompiledModel> compiledPlan();
    int homeShard(const graph::Minibatch &mb) const;
    SubmitInfo enqueue(int home, graph::Minibatch mb,
                       tensor::Tensor feature, double submit_sec);
    /**
     * Per-owner halo bytes of a batch served on @p home. Rows owned by
     * failed shards are excluded from the pairs and accumulated into
     * @p host_fallback_bytes instead (host-store re-gather over PCIe).
     */
    std::vector<std::pair<int, double>>
    batchHaloBytes(const std::vector<const Request *> &reqs, int home,
                   double *host_fallback_bytes) const;
    /** Deterministic dual-issue sampling (error diffusion over
     *  cfg.serving.duplicationFraction). */
    bool shouldDuplicate();
    /** Execute @p reqs as one micro-batch on device @p d. */
    std::vector<tensor::Tensor>
    runBatch(const core::CompiledModel &plan,
             const std::vector<const Request *> &reqs, int d);

    const graph::HeteroGraph &g_;
    tensor::Tensor hostFeatures_;
    std::string modelSource_;
    ShardedConfig cfg_;
    sim::DeviceGroup &group_;

    graph::Partition partition_;
    /** Bounded like the engine's: cfg.serving.planBudgetBytes. */
    PlanCache cache_;
    /** Parse + autotune + price closure shared with serve::Engine, so
     *  the sharded path compiles plans exactly one way. */
    PlanCompiler compiler_;
    models::WeightMap weights_;
    std::mt19937_64 rng_;

    /** Pooled per-device execution contexts: each device's arena slot
     *  buffers survive across cycles (zero steady-state allocation),
     *  and its tracked memory stays on its own runtime. */
    std::vector<core::ExecutionContext> execCtxs_;
    std::vector<models::WeightMap> execGrads_;

    /** FIFO queue per device. */
    std::vector<std::vector<Request>> queues_;
    std::map<std::uint64_t, tensor::Tensor> results_;
    /** Per-device host-transfer time accrued by queued submits:
     *  transfers to one device serialize, devices overlap. */
    std::vector<double> pendingHostSec_;
    /** Quarantined devices (failed; never routed to again). */
    std::vector<char> dead_;
    /** Breaker-avoided devices (soft: ignored when all alive devices
     *  are avoided); empty = no mask. */
    std::vector<char> routeAvoid_;
    /** Error-diffusion accumulator of the dual-issue sampler. */
    double dupAccum_ = 0.0;
    /** Brownout scale on duplicationFraction (1 = nominal). */
    double dupScale_ = 1.0;
    std::uint64_t nextId_ = 1;
    obs::FlightRecorder *flight_ = nullptr;
};

} // namespace hector::serve

#endif // HECTOR_SERVE_SHARDED_HH
