#include "serve/session.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/frontend.hh"

namespace hector::serve
{

using tensor::Tensor;

double
percentileSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::min(1.0, std::max(0.0, q));
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const std::size_t idx =
        rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

void
fillLatencyStats(ServingReport &report,
                 const std::vector<double> &latencies_sec,
                 const std::vector<double> &queue_delays_sec,
                 double deadline_ms)
{
    std::vector<double> sorted = latencies_sec;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double l : latencies_sec)
        sum += l;
    report.meanLatencyMs =
        latencies_sec.empty()
            ? 0.0
            : sum / static_cast<double>(latencies_sec.size()) * 1e3;
    report.p50LatencyMs = percentileSorted(sorted, 0.50) * 1e3;
    report.p95LatencyMs = percentileSorted(sorted, 0.95) * 1e3;
    report.p99LatencyMs = percentileSorted(sorted, 0.99) * 1e3;
    report.maxLatencyMs = sorted.empty() ? 0.0 : sorted.back() * 1e3;

    double delay_sum = 0.0;
    for (double d : queue_delays_sec)
        delay_sum += d;
    report.meanQueueDelayMs =
        queue_delays_sec.empty()
            ? 0.0
            : delay_sum / static_cast<double>(queue_delays_sec.size()) *
                  1e3;

    if (deadline_ms > 0.0 && !latencies_sec.empty()) {
        std::size_t met = 0;
        for (double l : latencies_sec)
            if (l * 1e3 <= deadline_ms)
                ++met;
        report.sloAttainment =
            static_cast<double>(met) /
            static_cast<double>(latencies_sec.size());
    }
}

ServingSession::ServingSession(const graph::HeteroGraph &g,
                               Tensor host_features,
                               std::string model_source, ServingConfig cfg,
                               sim::Runtime &rt)
    : g_(g), hostFeatures_(std::move(host_features)),
      modelSource_(std::move(model_source)), cfg_(cfg), rt_(rt),
      rng_(cfg.seed)
{
    if (hostFeatures_.dim(1) != cfg_.din)
        throw std::runtime_error(
            "ServingSession: host feature dim != config din");
    // Weights are initialized from the pristine (pre-pass) program so
    // they match what a training pipeline would have produced; plan
    // compilation itself goes through the cache in drain().
    core::Program pristine =
        core::parseModel(modelSource_, cfg_.din, cfg_.dout);
    weights_ = models::initWeights(pristine, g_, rng_);
}

std::uint64_t
ServingSession::submit()
{
    const double host_before = rt_.hostTimeMs() * 1e-3;
    auto scope = rt_.memoryScope();
    graph::Minibatch mb = graph::sampleNeighbors(g_, cfg_.sample, rng_);
    Tensor feature = graph::transferFeatures(mb, hostFeatures_, rt_);
    const std::uint64_t id = nextId_++;
    queue_.emplace_back(id, std::move(mb), std::move(feature));
    pendingHostSec_ += rt_.hostTimeMs() * 1e-3 - host_before;
    queue_.back().submitSec = pendingHostSec_;
    return id;
}

std::uint64_t
ServingSession::submit(graph::Minibatch mb, Tensor feature)
{
    if (feature.ndim() != 2 ||
        feature.dim(0) != mb.subgraph.numNodes() ||
        feature.dim(1) != cfg_.din)
        throw std::runtime_error(
            "ServingSession::submit: feature must be [subgraph nodes, "
            "din]");
    const std::uint64_t id = nextId_++;
    queue_.emplace_back(id, std::move(mb), std::move(feature));
    queue_.back().submitSec = pendingHostSec_;
    return id;
}

ServingReport
ServingSession::drain()
{
    lastLatenciesMs_.clear();
    // An empty cycle has no makespan to divide by: report all-zero
    // metrics (full SLO attainment, nothing served) and leave every
    // piece of session state — retained results, cache statistics,
    // transfer bookkeeping — untouched.
    if (queue_.empty())
        return ServingReport{};

    ServingReport report;

    // Results are retained for one cycle only; a long-lived session
    // would otherwise accumulate one output tensor per request served.
    results_.clear();

    const std::uint64_t launches_before = rt_.counters().total().launches;

    const auto plan = cache_.get(makePlanKey(
        modelSource_, cfg_.din, cfg_.dout, cfg_.compile, g_));

    StreamScheduler sched(rt_, cfg_.numStreams);
    auto scope = rt_.memoryScope();

    // FIFO coalescing into micro-batches of at most maxBatch.
    std::vector<std::size_t> batch_sizes;
    const std::size_t cap = std::max<std::size_t>(1, cfg_.maxBatch);
    for (std::size_t lo = 0; lo < queue_.size(); lo += cap) {
        const std::size_t hi = std::min(queue_.size(), lo + cap);
        std::vector<const Request *> reqs;
        reqs.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i)
            reqs.push_back(&queue_[i]);

        sched.run([&]() {
            MicroBatch batch = coalesce(reqs, rt_);
            std::vector<Tensor> outs =
                executeBatch(*plan, batch, weights_, rt_, execCtx_,
                             execGrads_, cfg_.useArena);
            // Detach results from the device memory scope so they
            // outlive the drain cycle.
            tensor::TrackerScope untracked(nullptr);
            for (std::size_t i = 0; i < reqs.size(); ++i)
                results_.insert_or_assign(reqs[i]->id, outs[i].clone());
        });
        batch_sizes.push_back(hi - lo);
    }

    // Timeline: the queued transfers serialize before the drain's
    // launches begin; per-batch completions come from the scheduler.
    const std::vector<double> completions = sched.completionTimes();
    const double makespan_sec = pendingHostSec_ + sched.makespanSec();

    std::size_t req_idx = 0;
    std::vector<double> latencies;
    std::vector<double> queue_delays;
    latencies.reserve(queue_.size());
    queue_delays.reserve(queue_.size());
    for (std::size_t b = 0; b < batch_sizes.size(); ++b) {
        const double completion = pendingHostSec_ + completions[b];
        const ScheduledBatch &sb = sched.batches()[b];
        const double service = sb.overheadSec + sb.execSec;
        for (std::size_t i = 0; i < batch_sizes[b]; ++i, ++req_idx) {
            const double lat = completion - queue_[req_idx].submitSec;
            latencies.push_back(lat);
            queue_delays.push_back(std::max(0.0, lat - service));
        }
    }

    report.requests = queue_.size();
    report.batches = batch_sizes.size();
    report.makespanMs = makespan_sec * 1e3;
    report.throughputReqPerSec =
        makespan_sec > 0.0 ? static_cast<double>(report.requests) /
                                 makespan_sec
                           : 0.0;
    report.msPerRequest =
        report.requests
            ? report.makespanMs / static_cast<double>(report.requests)
            : 0.0;

    fillLatencyStats(report, latencies, queue_delays, cfg_.deadlineMs);

    for (double l : latencies)
        lastLatenciesMs_.push_back(l * 1e3);

    report.cacheHits = cache_.stats().hits;
    report.cacheMisses = cache_.stats().misses;
    report.launches = rt_.counters().total().launches - launches_before;

    queue_.clear();
    pendingHostSec_ = 0.0;
    return report;
}

BatchCost
ServingSession::serveOldest(std::size_t n, int stream)
{
    BatchCost cost;
    n = std::min(n, queue_.size());
    if (n == 0)
        return cost;
    cost.requests = n;

    const auto plan = cache_.get(makePlanKey(
        modelSource_, cfg_.din, cfg_.dout, cfg_.compile, g_));

    const StreamRunCost run = runOnStream(rt_, stream, [&]() {
        auto scope = rt_.memoryScope();
        std::vector<const Request *> reqs;
        reqs.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            reqs.push_back(&queue_[i]);
        MicroBatch batch = coalesce(reqs, rt_);
        std::vector<Tensor> outs = executeBatch(
            *plan, batch, weights_, rt_, execCtx_, execGrads_,
            cfg_.useArena);
        tensor::TrackerScope untracked(nullptr);
        for (std::size_t i = 0; i < n; ++i)
            results_.insert_or_assign(queue_[i].id, outs[i].clone());
    });
    cost.execSec = run.execSec;
    cost.overheadSec = run.overheadSec;

    // Rebase the drain-cycle transfer bookkeeping: the served
    // requests' transfer time (cumulative through the last of them)
    // leaves this submit epoch with them, so a later drain() only
    // charges the transfers of the requests it actually serves.
    // submitSec is non-decreasing along the queue, so the remaining
    // entries stay non-negative.
    const double served_host_sec = queue_[n - 1].submitSec;
    queue_.erase(queue_.begin(),
                 queue_.begin() + static_cast<std::ptrdiff_t>(n));
    pendingHostSec_ = std::max(0.0, pendingHostSec_ - served_host_sec);
    for (Request &r : queue_)
        r.submitSec = std::max(0.0, r.submitSec - served_host_sec);
    return cost;
}

const Tensor *
ServingSession::result(std::uint64_t id) const
{
    auto it = results_.find(id);
    return it == results_.end() ? nullptr : &it->second;
}

} // namespace hector::serve
