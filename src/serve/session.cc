#include "serve/session.hh"

#include <algorithm>
#include <stdexcept>

#include "core/frontend.hh"

namespace hector::serve
{

using tensor::Tensor;

ServingSession::ServingSession(const graph::HeteroGraph &g,
                               Tensor host_features,
                               std::string model_source, ServingConfig cfg,
                               sim::Runtime &rt)
    : g_(g), hostFeatures_(std::move(host_features)),
      modelSource_(std::move(model_source)), cfg_(cfg), rt_(rt),
      rng_(cfg.seed)
{
    if (hostFeatures_.dim(1) != cfg_.din)
        throw std::runtime_error(
            "ServingSession: host feature dim != config din");
    // Weights are initialized from the pristine (pre-pass) program so
    // they match what a training pipeline would have produced; plan
    // compilation itself goes through the cache in drain().
    core::Program pristine =
        core::parseModel(modelSource_, cfg_.din, cfg_.dout);
    weights_ = models::initWeights(pristine, g_, rng_);
}

std::uint64_t
ServingSession::submit()
{
    const double host_before = rt_.hostTimeMs() * 1e-3;
    auto scope = rt_.memoryScope();
    graph::Minibatch mb = graph::sampleNeighbors(g_, cfg_.sample, rng_);
    Tensor feature = graph::transferFeatures(mb, hostFeatures_, rt_);
    const std::uint64_t id = nextId_++;
    queue_.emplace_back(id, std::move(mb), std::move(feature));
    pendingHostSec_ += rt_.hostTimeMs() * 1e-3 - host_before;
    queue_.back().submitSec = pendingHostSec_;
    return id;
}

std::uint64_t
ServingSession::submit(graph::Minibatch mb, Tensor feature)
{
    if (feature.ndim() != 2 ||
        feature.dim(0) != mb.subgraph.numNodes() ||
        feature.dim(1) != cfg_.din)
        throw std::runtime_error(
            "ServingSession::submit: feature must be [subgraph nodes, "
            "din]");
    const std::uint64_t id = nextId_++;
    queue_.emplace_back(id, std::move(mb), std::move(feature));
    queue_.back().submitSec = pendingHostSec_;
    return id;
}

ServingReport
ServingSession::drain()
{
    ServingReport report;
    report.cacheHits = cache_.stats().hits;
    report.cacheMisses = cache_.stats().misses;
    lastLatenciesMs_.clear();
    if (queue_.empty())
        return report;

    // Results are retained for one cycle only; a long-lived session
    // would otherwise accumulate one output tensor per request served.
    results_.clear();

    const std::uint64_t launches_before = rt_.counters().total().launches;

    const auto plan = cache_.get(makePlanKey(
        modelSource_, cfg_.din, cfg_.dout, cfg_.compile, g_));

    StreamScheduler sched(rt_, cfg_.numStreams);
    auto scope = rt_.memoryScope();

    // FIFO coalescing into micro-batches of at most maxBatch.
    std::vector<std::size_t> batch_sizes;
    const std::size_t cap = std::max<std::size_t>(1, cfg_.maxBatch);
    for (std::size_t lo = 0; lo < queue_.size(); lo += cap) {
        const std::size_t hi = std::min(queue_.size(), lo + cap);
        std::vector<const Request *> reqs;
        reqs.reserve(hi - lo);
        for (std::size_t i = lo; i < hi; ++i)
            reqs.push_back(&queue_[i]);

        sched.run([&]() {
            MicroBatch batch = coalesce(reqs, rt_);
            std::vector<Tensor> outs =
                executeBatch(*plan, batch, weights_, rt_);
            // Detach results from the device memory scope so they
            // outlive the drain cycle.
            tensor::TrackerScope untracked(nullptr);
            for (std::size_t i = 0; i < reqs.size(); ++i)
                results_.insert_or_assign(reqs[i]->id, outs[i].clone());
        });
        batch_sizes.push_back(hi - lo);
    }

    // Timeline: the queued transfers serialize before the drain's
    // launches begin; per-batch completions come from the scheduler.
    const std::vector<double> completions = sched.completionTimes();
    const double makespan_sec = pendingHostSec_ + sched.makespanSec();

    std::size_t req_idx = 0;
    std::vector<double> latencies;
    latencies.reserve(queue_.size());
    for (std::size_t b = 0; b < batch_sizes.size(); ++b) {
        const double completion = pendingHostSec_ + completions[b];
        for (std::size_t i = 0; i < batch_sizes[b]; ++i, ++req_idx)
            latencies.push_back(completion - queue_[req_idx].submitSec);
    }

    report.requests = queue_.size();
    report.batches = batch_sizes.size();
    report.makespanMs = makespan_sec * 1e3;
    report.throughputReqPerSec =
        makespan_sec > 0.0 ? static_cast<double>(report.requests) /
                                 makespan_sec
                           : 0.0;
    report.msPerRequest =
        report.requests
            ? report.makespanMs / static_cast<double>(report.requests)
            : 0.0;

    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double l : latencies)
        sum += l;
    report.meanLatencyMs =
        latencies.empty()
            ? 0.0
            : sum / static_cast<double>(latencies.size()) * 1e3;
    report.p50LatencyMs =
        sorted.empty() ? 0.0 : sorted[sorted.size() / 2] * 1e3;
    report.maxLatencyMs = sorted.empty() ? 0.0 : sorted.back() * 1e3;

    for (double l : latencies)
        lastLatenciesMs_.push_back(l * 1e3);

    report.cacheHits = cache_.stats().hits;
    report.cacheMisses = cache_.stats().misses;
    report.launches = rt_.counters().total().launches - launches_before;

    queue_.clear();
    pendingHostSec_ = 0.0;
    return report;
}

const Tensor *
ServingSession::result(std::uint64_t id) const
{
    auto it = results_.find(id);
    return it == results_.end() ? nullptr : &it->second;
}

} // namespace hector::serve
