#include "serve/session.hh"

namespace hector::serve
{

namespace
{

/** Validate @p cfg under the session's name, then derive the engine
 *  knobs from it — runs in the member-init list, so a bad config
 *  throws before any engine state is built. */
EngineConfig
validatedEngineConfig(const ServingConfig &cfg)
{
    validateServingConfig(cfg, "ServingSession");
    EngineConfig ec;
    ec.numStreams = cfg.numStreams;
    ec.planBudgetBytes = cfg.planBudgetBytes;
    ec.autotuneSchedules = cfg.autotuneSchedules;
    return ec;
}

} // namespace

ServingSession::ServingSession(const graph::HeteroGraph &g,
                               tensor::Tensor host_features,
                               std::string model_source, ServingConfig cfg,
                               sim::Runtime &rt)
    : cfg_(cfg), engine_(g, validatedEngineConfig(cfg), rt)
{
    engine_.registerVariant("default", std::move(host_features),
                            std::move(model_source), cfg);
}

} // namespace hector::serve
