/**
 * @file
 * Online arrival serving: open-loop load, deadline SLOs, adaptive
 * micro-batching.
 *
 * PR 1's ServingSession models a closed cycle: submit everything, then
 * drain. A production deployment instead faces an *open loop* — the
 * world keeps issuing requests at its own rate whether or not the
 * server keeps up — and is judged on arrival-relative tail latency and
 * deadline attainment, not just peak throughput. This module adds that
 * layer on the simulated clock:
 *
 *  - LoadGenerator draws seeded Poisson inter-arrival times (inverse
 *    CDF over a raw mt19937_64 stream, so the sequence is bit-stable
 *    across platforms and scales exactly as 1/rate for a fixed seed);
 *  - OnlineServer wraps a ServingSession and serves in timed ticks:
 *    arrivals are admitted as the host clock passes them (each paying
 *    its modeled host-to-device transfer), one micro-batch is issued
 *    per tick, and completions are gated on host serialization, stream
 *    availability, and the shared-resource serial fraction — the same
 *    overlap rule as sim::Runtime::makespanSec, applied per batch;
 *  - AdaptiveBatcher picks each tick's batch size from observed queue
 *    depth and EWMA estimates of per-batch overhead / per-request
 *    execution time: under low load it serves what is queued
 *    immediately (latency), under saturation it grows to maxBatch
 *    (throughput), and in between it caps the batch so modeled service
 *    time stays within a fraction of the deadline budget.
 *
 * The fixed-batch alternative (OnlineConfig::adaptive = false) is the
 * classic wait-to-fill policy: hold requests until `fixedBatch` have
 * arrived. It matches adaptive throughput under saturation but pays
 * brutal fill-wait latency at low load — the comparison
 * bench_serving_online quantifies.
 *
 * Constructed over a sim::DeviceGroup instead of a single Runtime, the
 * server drives a ShardedSession: arrivals are admitted on the shared
 * (PCIe) host clock and routed to their home shard, each device issues
 * batches on its own driver thread and streams, batch execution is
 * additionally gated on the halo exchange over the modeled
 * interconnect, and results all-gather onto device 0.
 */

#ifndef HECTOR_SERVE_ONLINE_HH
#define HECTOR_SERVE_ONLINE_HH

#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "serve/engine.hh"
#include "serve/session.hh"
#include "serve/sharded.hh"

namespace hector::serve
{

/**
 * Open-loop Poisson arrival process: @p count arrivals at @p rate
 * requests per simulated second. Deterministic under a fixed seed, and
 * for equal seeds the arrival times scale exactly by rate (gaps are
 * u_i / rate with a rate-independent u_i sequence).
 */
class LoadGenerator
{
  public:
    LoadGenerator(double rate_per_sec, std::size_t count,
                  std::uint64_t seed);

    bool done() const { return left_ == 0; }
    std::size_t remaining() const { return left_; }

    /** Absolute time of the next arrival; call only when !done(). */
    double peekSec() const;

    /** Consume and return the next arrival's absolute time. */
    double next();

    /** The whole arrival sequence, for tests and sweeps. */
    static std::vector<double> arrivals(double rate_per_sec,
                                        std::size_t count,
                                        std::uint64_t seed);

  private:
    double ratePerSec_;
    std::size_t left_;
    std::mt19937_64 rng_;
    double nextSec_ = 0.0;

    void advance();
};

/**
 * Per-tick micro-batch sizing from queue depth + cost EWMAs.
 *
 * Policy: a queue at or above maxBatch means the server is saturated
 * and throughput is all that matters — serve maxBatch. Below that,
 * serve everything queued, except when the EWMA cost model predicts
 * the batch's own service time would eat more than `budgetFraction`
 * of the deadline, in which case the batch is capped so queued
 * requests keep their SLO headroom.
 */
class AdaptiveBatcher
{
  public:
    /**
     * @param max_batch       upper bound on the micro-batch size
     * @param deadline_sec    per-request SLO (0 disables the cap)
     * @param alpha           EWMA smoothing factor in (0, 1]
     * @param budget_fraction fraction of the deadline a single batch's
     *                        service time may consume
     */
    AdaptiveBatcher(std::size_t max_batch, double deadline_sec,
                    double alpha = 0.25, double budget_fraction = 0.5);

    /** Batch size for a tick that sees @p queue_depth queued requests. */
    std::size_t pick(std::size_t queue_depth) const;

    /** Feed one served batch's modeled cost into the EWMAs. */
    void observe(const BatchCost &cost);

    bool calibrated() const { return observed_; }
    double ewmaOverheadSec() const { return ewmaOverheadSec_; }
    double ewmaExecPerRequestSec() const { return ewmaExecPerReqSec_; }
    std::size_t maxBatch() const { return maxBatch_; }

  private:
    std::size_t maxBatch_;
    double deadlineSec_;
    double alpha_;
    double budgetFraction_;
    double ewmaOverheadSec_ = 0.0;
    double ewmaExecPerReqSec_ = 0.0;
    bool observed_ = false;
};

/** Offered load of one engine variant in a multi-tenant run. */
struct VariantLoad
{
    /** Name the variant was registered under (Engine registry). */
    std::string variant;
    /** Offered load in requests per simulated second. */
    double ratePerSec = 1000.0;
    /** Total arrivals of this variant in the run. */
    std::size_t numRequests = 32;
    /** Seed of this variant's Poisson arrival process. */
    std::uint64_t arrivalSeed = 0xa223;
};

/** Knobs of one open-loop serving run. */
struct OnlineConfig
{
    /** Session knobs; deadlineMs and maxBatch are read from here. */
    ServingConfig serving;
    /** Offered load in requests per simulated second. */
    double arrivalRatePerSec = 2000.0;
    /** Total arrivals in the run. */
    std::size_t numRequests = 64;
    /** Seed of the Poisson arrival process. */
    std::uint64_t arrivalSeed = 0xa221;
    /** Adaptive batch sizing; false selects wait-to-fill fixedBatch. */
    bool adaptive = true;
    /** Wait-to-fill batch size when !adaptive; 0 means maxBatch, and
     *  larger values are clamped to maxBatch. */
    std::size_t fixedBatch = 0;
    /** EWMA smoothing factor of the adaptive batcher. */
    double ewmaAlpha = 0.25;
    /** Deadline fraction one batch's service time may consume. */
    double deadlineBudgetFraction = 0.5;
    /** Keep every request's output tensor (tests); default bounded. */
    bool retainResults = false;
    /**
     * Partitioner knobs of the sharded path (ignored by the
     * single-device constructor); numShards follows the device group.
     */
    graph::PartitionSpec partition;
    /**
     * Multi-tenant mode (the Engine constructor): one offered load per
     * engine variant. arrivalRatePerSec / numRequests / arrivalSeed /
     * serving above are ignored in that mode — every per-variant knob
     * (deadline, maxBatch, sampling) comes from the variant's own
     * ServingConfig in the engine registry.
     */
    std::vector<VariantLoad> variants;
};

/** Arrival-aware metrics of one open-loop run. */
struct OnlineReport : ServingReport
{
    /** Configured offered load. */
    double offeredRatePerSec = 0.0;
    /** Configured per-request deadline. */
    double deadlineMs = 0.0;
    /** Serving ticks == micro-batches issued (also in `batches`). */
    std::size_t ticks = 0;
    double meanBatchSize = 0.0;
    std::size_t peakQueueDepth = 0;
    /** Time of the last arrival (offered-load duration). */
    double lastArrivalMs = 0.0;
    /** Devices the run was served on (1 = single-device path). */
    int devices = 1;
    /** Halo-exchange bytes moved over the interconnect. */
    double haloBytes = 0.0;
    /** Link-seconds the interconnect was busy during the run, ms. */
    double interconnectMs = 0.0;
    /** Devices quarantined as failed during the run (sharded path). */
    int devicesFailed = 0;
    /** Requests re-routed off failed devices to survivors. */
    std::size_t requestsRerouted = 0;
};

/**
 * Open-loop server: a LoadGenerator feeding a ServingSession in timed
 * ticks on the simulated clock.
 */
class OnlineServer
{
  public:
    /** Single simulated device (the PR 2 path). */
    OnlineServer(const graph::HeteroGraph &g, tensor::Tensor host_features,
                 std::string model_source, OnlineConfig cfg,
                 sim::Runtime &rt);

    /** Sharded across @p group's devices via a ShardedSession. */
    OnlineServer(const graph::HeteroGraph &g, tensor::Tensor host_features,
                 std::string model_source, OnlineConfig cfg,
                 sim::DeviceGroup &group);

    /**
     * Multi-tenant: open-loop load over an externally built Engine
     * (variants already registered). Each cfg.variants entry drives
     * one seeded Poisson arrival process; ticks interleave variants
     * deadline-first (earliest head-of-line absolute deadline wins;
     * variants without a deadline compete on arrival order), and each
     * tick serves one same-variant micro-batch sized by that
     * variant's own AdaptiveBatcher. Throws std::invalid_argument on
     * an empty load list or an unregistered variant name.
     */
    OnlineServer(Engine &engine, OnlineConfig cfg);

    /** Serve all configured arrivals to completion. */
    OnlineReport run();

    /** The wrapped single-device session; throws in other modes. */
    ServingSession &session();
    /** The wrapped sharded session; throws in other modes. */
    ShardedSession &sharded();
    /** The served engine; throws outside multi-tenant mode. */
    Engine &engine();
    /**
     * The single-session adaptive batcher. Throws in multi-tenant
     * mode, where each variant lane owns its own batcher and this one
     * would never observe any traffic.
     */
    const AdaptiveBatcher &
    batcher() const
    {
        if (engine_)
            throw std::runtime_error(
                "OnlineServer::batcher: multi-tenant mode batches per "
                "variant lane");
        return batcher_;
    }
    const OnlineConfig &config() const { return cfg_; }

    /**
     * Attach a per-request flight recorder to the whole serving path:
     * forwarded to the wrapped engine/session/sharded session (their
     * enqueue/plan/batch events) and used by the tick loops for
     * arrival/admission/exec/completion lifecycle events. nullptr
     * detaches. The recorder must outlive the server or be detached.
     */
    void setFlightRecorder(obs::FlightRecorder *fr);
    obs::FlightRecorder *flightRecorder() const { return flight_; }

    /** Per-request arrival-relative latencies of the last run, ms. */
    const std::vector<double> &latenciesMs() const { return latenciesMs_; }
    /** Per-request queueing delays of the last run, ms. */
    const std::vector<double> &queueDelaysMs() const
    {
        return queueDelaysMs_;
    }
    /** Per-tick micro-batch sizes of the last run. */
    const std::vector<std::size_t> &batchSizes() const
    {
        return batchSizes_;
    }

  private:
    OnlineReport runSingle();
    OnlineReport runSharded();
    OnlineReport runMulti();

    OnlineConfig cfg_;
    /** Exactly one of rt_/group_/engine_ (and the matching wrapped
     *  object) is set. */
    sim::Runtime *rt_ = nullptr;
    sim::DeviceGroup *group_ = nullptr;
    Engine *engine_ = nullptr;
    std::unique_ptr<ServingSession> session_;
    std::unique_ptr<ShardedSession> sharded_;
    AdaptiveBatcher batcher_;

    std::vector<double> latenciesMs_;
    std::vector<double> queueDelaysMs_;
    std::vector<std::size_t> batchSizes_;
    obs::FlightRecorder *flight_ = nullptr;
};

} // namespace hector::serve

#endif // HECTOR_SERVE_ONLINE_HH
