/**
 * @file
 * Online arrival serving: open-loop load, deadline SLOs, adaptive
 * micro-batching.
 *
 * PR 1's ServingSession models a closed cycle: submit everything, then
 * drain. A production deployment instead faces an *open loop* — the
 * world keeps issuing requests at its own rate whether or not the
 * server keeps up — and is judged on arrival-relative tail latency and
 * deadline attainment, not just peak throughput. This module adds that
 * layer on the simulated clock:
 *
 *  - LoadGenerator draws seeded Poisson inter-arrival times (inverse
 *    CDF over a raw mt19937_64 stream, so the sequence is bit-stable
 *    across platforms and scales exactly as 1/rate for a fixed seed);
 *    an optional two-state MMPP mode (ServingConfig::mmpp) modulates
 *    the rate between baseline and burst states for bursty traffic,
 *    drawn from the same seeded stream;
 *  - OnlineServer wraps a ServingSession and serves in timed ticks:
 *    arrivals are admitted as the host clock passes them (each paying
 *    its modeled host-to-device transfer), one micro-batch is issued
 *    per tick, and completions are gated on host serialization, stream
 *    availability, and the shared-resource serial fraction — the same
 *    overlap rule as sim::Runtime::makespanSec, applied per batch;
 *  - every batching / admission / lane-ordering decision is delegated
 *    to a SchedulerPolicy (serve/scheduler_policy.hh): "adaptive"
 *    (EDF interleave + deadline-budget AdaptiveBatcher, the default),
 *    "fixed" (classic wait-to-fill — matches adaptive throughput
 *    under saturation but pays brutal fill-wait latency at low load),
 *    "wfq" (priority tiers + weighted-fair tenant sharing), or any
 *    registered custom policy. Admission control (ServingConfig::
 *    maxQueueDepth + ShedMode) sheds deterministically at the bound,
 *    so p99 of admitted requests stays bounded under overload instead
 *    of growing with the queue.
 *
 * Constructed over a sim::DeviceGroup instead of a single Runtime, the
 * server drives a ShardedSession: arrivals are admitted on the shared
 * (PCIe) host clock and routed to their home shard, each device issues
 * batches on its own driver thread and streams, batch execution is
 * additionally gated on the halo exchange over the modeled
 * interconnect, and results all-gather onto device 0.
 */

#ifndef HECTOR_SERVE_ONLINE_HH
#define HECTOR_SERVE_ONLINE_HH

#include <cstdint>
#include <memory>
#include <random>
#include <stdexcept>
#include <vector>

#include "serve/engine.hh"
#include "serve/scheduler_policy.hh"
#include "serve/session.hh"
#include "serve/sharded.hh"

namespace hector::serve
{

/**
 * Open-loop Poisson arrival process: @p count arrivals at @p rate
 * requests per simulated second. Deterministic under a fixed seed, and
 * for equal seeds the arrival times scale exactly by rate (gaps are
 * u_i / rate with a rate-independent u_i sequence).
 *
 * With an enabled MmppSpec the process is a two-state Markov-modulated
 * Poisson: gaps are drawn at the current state's rate (baseline rate
 * or rate x burstRateMultiplier), and after each arrival one extra
 * uniform from the same seeded stream decides the state transition —
 * still bit-stable across platforms, thread counts and reruns.
 *
 * With an enabled DiurnalSpec the instantaneous rate is additionally
 * modulated sinusoidally — rate(t) = base x (1 + amplitude x
 * sin(2 pi t / period)) — composing with the MMPP burst multiplier;
 * disabled, the gap computation is the exact pre-diurnal expression,
 * so existing arrival sequences stay bit-identical.
 *
 * Trace-replay mode (the vector ctor / loadTrace()) bypasses the RNG
 * entirely and replays a recorded, non-decreasing timestamp sequence —
 * the same open-loop interface over production traces.
 */
class LoadGenerator
{
  public:
    LoadGenerator(double rate_per_sec, std::size_t count,
                  std::uint64_t seed);
    LoadGenerator(double rate_per_sec, std::size_t count,
                  std::uint64_t seed, const MmppSpec &mmpp);
    LoadGenerator(double rate_per_sec, std::size_t count,
                  std::uint64_t seed, const MmppSpec &mmpp,
                  const DiurnalSpec &diurnal);

    /** Trace replay: arrivals at exactly @p times_sec (non-decreasing,
     *  non-negative; throws std::invalid_argument otherwise). */
    explicit LoadGenerator(std::vector<double> times_sec);

    /**
     * Parse an arrival-trace file: one non-negative timestamp (seconds)
     * per line, '#'-prefixed and blank lines skipped. Throws
     * std::runtime_error on an unreadable file or malformed line.
     */
    static std::vector<double> loadTrace(const std::string &path);

    bool done() const { return left_ == 0; }
    std::size_t remaining() const { return left_; }
    /** In the MMPP burst state (always false for pure Poisson). */
    bool inBurst() const { return burst_; }

    /** Absolute time of the next arrival; call only when !done(). */
    double peekSec() const;

    /** Consume and return the next arrival's absolute time. */
    double next();

    /** The whole arrival sequence, for tests and sweeps. */
    static std::vector<double> arrivals(double rate_per_sec,
                                        std::size_t count,
                                        std::uint64_t seed);
    static std::vector<double> arrivals(double rate_per_sec,
                                        std::size_t count,
                                        std::uint64_t seed,
                                        const MmppSpec &mmpp);

  private:
    double ratePerSec_;
    std::size_t left_;
    std::mt19937_64 rng_;
    double nextSec_ = 0.0;
    MmppSpec mmpp_{};
    DiurnalSpec diurnal_{};
    bool burst_ = false;
    /** Trace-replay mode: arrivals come from trace_, not the RNG. */
    std::vector<double> trace_;
    std::size_t traceIdx_ = 0;

    double nextU();
    void advance();
};

/** Offered load of one engine variant in a multi-tenant run. */
struct VariantLoad
{
    /** Name the variant was registered under (Engine registry). */
    std::string variant;
    /** Offered load in requests per simulated second. */
    double ratePerSec = 1000.0;
    /** Total arrivals of this variant in the run. */
    std::size_t numRequests = 32;
    /** Seed of this variant's Poisson arrival process. */
    std::uint64_t arrivalSeed = 0xa223;
};

/** Knobs of one open-loop serving run. */
struct OnlineConfig
{
    /** Session knobs; deadlineMs and maxBatch are read from here. */
    ServingConfig serving;
    /** Offered load in requests per simulated second. */
    double arrivalRatePerSec = 2000.0;
    /** Total arrivals in the run. */
    std::size_t numRequests = 64;
    /** Seed of the Poisson arrival process. */
    std::uint64_t arrivalSeed = 0xa221;
    /**
     * Trace-replay arrivals: when non-empty, the single-device and
     * sharded paths replay exactly these timestamps (seconds,
     * non-decreasing) instead of drawing a Poisson/MMPP process, and
     * the effective request count is the trace length (numRequests is
     * ignored). Build from a file with LoadGenerator::loadTrace().
     */
    std::vector<double> arrivalTrace;
    /** Adaptive batch sizing; false selects wait-to-fill fixedBatch.
     *  Consulted only when `policy` and `makePolicy` are unset. */
    bool adaptive = true;
    /**
     * Scheduling policy by registry name ("fixed", "adaptive", "wfq",
     * or any policy registered via registerSchedulerPolicy). Empty
     * falls back to the legacy `adaptive` flag above. Unknown names
     * throw std::invalid_argument at construction.
     */
    std::string policy;
    /**
     * Custom policy factory; wins over `policy` when set, so a
     * scheduler is a one-file addition without touching the registry.
     */
    PolicyFactory makePolicy;
    /** Wait-to-fill batch size when !adaptive; 0 means maxBatch, and
     *  larger values are clamped to maxBatch. */
    std::size_t fixedBatch = 0;
    /** EWMA smoothing factor of the adaptive batcher. */
    double ewmaAlpha = 0.25;
    /** Deadline fraction one batch's service time may consume. */
    double deadlineBudgetFraction = 0.5;
    /** Keep every request's output tensor (tests); default bounded. */
    bool retainResults = false;
    /**
     * Partitioner knobs of the sharded path (ignored by the
     * single-device constructor); numShards follows the device group.
     */
    graph::PartitionSpec partition;
    /**
     * Multi-tenant mode (the Engine constructor): one offered load per
     * engine variant. arrivalRatePerSec / numRequests / arrivalSeed /
     * serving above are ignored in that mode — every per-variant knob
     * (deadline, maxBatch, sampling) comes from the variant's own
     * ServingConfig in the engine registry.
     */
    std::vector<VariantLoad> variants;
};

/** Arrival-aware metrics of one open-loop run. */
struct OnlineReport : ServingReport
{
    /** Configured offered load. */
    double offeredRatePerSec = 0.0;
    /** Configured per-request deadline. */
    double deadlineMs = 0.0;
    /** Serving ticks == micro-batches issued (also in `batches`). */
    std::size_t ticks = 0;
    double meanBatchSize = 0.0;
    std::size_t peakQueueDepth = 0;
    /** Time of the last arrival (offered-load duration). */
    double lastArrivalMs = 0.0;
    /** Devices the run was served on (1 = single-device path). */
    int devices = 1;
    /** Halo-exchange bytes moved over the interconnect. */
    double haloBytes = 0.0;
    /** Link-seconds the interconnect was busy during the run, ms. */
    double interconnectMs = 0.0;
    /** Devices quarantined as failed during the run (sharded path). */
    int devicesFailed = 0;
    /** Requests re-routed off failed devices to survivors. */
    std::size_t requestsRerouted = 0;
    /** Arrivals rejected at admission (load shedding). */
    std::size_t requestsShed = 0;
    /** requestsShed / offered arrivals; 0 when nothing was shed. */
    double shedFraction = 0.0;
    /**
     * SLO attainment over ADMITTED requests only. The inherited
     * sloAttainment counts shed arrivals as misses (denominator =
     * offered = served + shed), so the two are identical when nothing
     * is shed and under overload the gap is the price of shedding.
     */
    double admittedSloAttainment = 1.0;
    /**
     * Peak depth of any single lane's queue at an admission or
     * scheduling point. peakQueueDepth keeps its historical meaning
     * (engine-wide queued requests in multi-tenant mode); this one is
     * the per-lane bound admission control enforces — it never
     * exceeds ServingConfig::maxQueueDepth when shedding is on.
     */
    std::size_t peakLaneQueueDepth = 0;
    /** Resolved name of the scheduling policy the run used. */
    std::string policy;

    /// @name Resilience accounting (0 unless resilience.enabled).
    ///
    /// Offered arrivals partition exactly: offered = served + shed +
    /// requestsTimedOut + requestsFailed. Timed-out and retry-exhausted
    /// requests were ADMITTED and then failed, so they count against
    /// availability (served / admitted), not against shedFraction.
    /// @{
    /** Requests given a retry attempt after a transient failure. */
    std::size_t requestsRetried = 0;
    /** Requests re-issued on a second lane/device (hedged). */
    std::size_t requestsHedged = 0;
    /** Hedges whose backup completed before the primary. */
    std::size_t hedgeWins = 0;
    /** Admitted requests failed fast by deadline timeout. */
    std::size_t requestsTimedOut = 0;
    /** Admitted requests failed after exhausting retries. */
    std::size_t requestsFailed = 0;
    /** Circuit-breaker transitions into the open state. */
    std::size_t breakerOpens = 0;
    /** Serving ticks spent at a brownout level > 0. */
    std::size_t brownoutTicks = 0;
    /// @}
};

/**
 * Open-loop server: a LoadGenerator feeding a ServingSession in timed
 * ticks on the simulated clock.
 */
class OnlineServer
{
  public:
    /** Single simulated device (the PR 2 path). */
    OnlineServer(const graph::HeteroGraph &g, tensor::Tensor host_features,
                 std::string model_source, OnlineConfig cfg,
                 sim::Runtime &rt);

    /** Sharded across @p group's devices via a ShardedSession. */
    OnlineServer(const graph::HeteroGraph &g, tensor::Tensor host_features,
                 std::string model_source, OnlineConfig cfg,
                 sim::DeviceGroup &group);

    /**
     * Multi-tenant: open-loop load over an externally built Engine
     * (variants already registered). Each cfg.variants entry drives
     * one seeded Poisson arrival process; ticks interleave variants
     * deadline-first (earliest head-of-line absolute deadline wins;
     * variants without a deadline compete on arrival order), and each
     * tick serves one same-variant micro-batch sized by that
     * variant's own AdaptiveBatcher. Throws std::invalid_argument on
     * an empty load list or an unregistered variant name.
     */
    OnlineServer(Engine &engine, OnlineConfig cfg);

    /** Serve all configured arrivals to completion. */
    OnlineReport run();

    /** The wrapped single-device session; throws in other modes. */
    ServingSession &session();
    /** The wrapped sharded session; throws in other modes. */
    ShardedSession &sharded();
    /** The served engine; throws outside multi-tenant mode. */
    Engine &engine();
    /**
     * The single-session adaptive batcher. Throws in multi-tenant
     * mode, where each variant lane owns its own batcher and this one
     * would never observe any traffic.
     */
    const AdaptiveBatcher &
    batcher() const
    {
        if (engine_)
            throw std::runtime_error(
                "OnlineServer::batcher: multi-tenant mode batches per "
                "variant lane");
        return batcher_;
    }
    const OnlineConfig &config() const { return cfg_; }

    /**
     * Attach a per-request flight recorder to the whole serving path:
     * forwarded to the wrapped engine/session/sharded session (their
     * enqueue/plan/batch events) and used by the tick loops for
     * arrival/admission/exec/completion lifecycle events. nullptr
     * detaches. The recorder must outlive the server or be detached.
     */
    void setFlightRecorder(obs::FlightRecorder *fr);
    obs::FlightRecorder *flightRecorder() const { return flight_; }

    /** Per-request arrival-relative latencies of the last run, ms. */
    const std::vector<double> &latenciesMs() const { return latenciesMs_; }
    /** Per-request queueing delays of the last run, ms. */
    const std::vector<double> &queueDelaysMs() const
    {
        return queueDelaysMs_;
    }
    /** Per-tick micro-batch sizes of the last run. */
    const std::vector<std::size_t> &batchSizes() const
    {
        return batchSizes_;
    }

  private:
    OnlineReport runSingle();
    OnlineReport runSharded();
    OnlineReport runMulti();

    /** Resolve cfg_ (makePolicy > policy name > adaptive flag) into a
     *  policy instance over @p setup's lanes. */
    std::unique_ptr<SchedulerPolicy> buildPolicy(PolicySetup setup) const;

    OnlineConfig cfg_;
    /** Exactly one of rt_/group_/engine_ (and the matching wrapped
     *  object) is set. */
    sim::Runtime *rt_ = nullptr;
    sim::DeviceGroup *group_ = nullptr;
    Engine *engine_ = nullptr;
    std::unique_ptr<ServingSession> session_;
    std::unique_ptr<ShardedSession> sharded_;
    AdaptiveBatcher batcher_;

    std::vector<double> latenciesMs_;
    std::vector<double> queueDelaysMs_;
    std::vector<std::size_t> batchSizes_;
    obs::FlightRecorder *flight_ = nullptr;
};

/**
 * Absorb an OnlineReport into the obs metrics registry under
 * @p prefix: the shared ServingReport gauges via absorbReport, plus
 * the online-only overload metrics (requests_shed, shed_fraction,
 * admitted_slo_attainment, peak_queue_depth, peak_lane_queue_depth).
 * One emitter path for every bench that snapshots an online run.
 */
void absorbOnlineReport(obs::Registry &reg, const OnlineReport &report,
                        const std::string &prefix);

} // namespace hector::serve

#endif // HECTOR_SERVE_ONLINE_HH
