/**
 * @file
 * ServingSession: the single-variant façade of the serving runtime.
 *
 * A session serves one model over one host-resident graph, the way a
 * production deployment keeps a trained RGNN resident and answers a
 * stream of neighborhood queries. Since the multi-tenant refactor the
 * session owns no serving machinery of its own: it registers exactly
 * one variant ("default") with a serve::Engine and forwards every
 * call, so the single-model path and the multi-variant path are the
 * same code — plan caching (bounded, LRU), per-variant weights and
 * pooled arena execution contexts, micro-batch coalescing, stream
 * multiplexing, and (opt-in) autotuned GEMM schedules all live in
 * engine.{hh,cc}.
 *
 * The serving pipeline is the first subsystem layered on *top* of the
 * compiler: it only consumes the public compile/execute API, never the
 * IR internals.
 */

#ifndef HECTOR_SERVE_SESSION_HH
#define HECTOR_SERVE_SESSION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "serve/engine.hh"

namespace hector::serve
{

class ServingSession
{
  public:
    /**
     * @param g             host-resident full graph (outlives session)
     * @param host_features host-resident node features, [nodes, din]
     * @param model_source  model in the textual DSL (model_sources.hh)
     *
     * Throws std::invalid_argument when @p cfg is invalid (zero
     * maxBatch/numStreams/din/dout, negative deadline), naming the
     * offending field.
     */
    ServingSession(const graph::HeteroGraph &g,
                   tensor::Tensor host_features, std::string model_source,
                   ServingConfig cfg, sim::Runtime &rt);

    /**
     * Sample a neighborhood query, pay its host-to-device transfer,
     * and enqueue it. Returns the request id.
     */
    std::uint64_t submit() { return engine_.submit(0); }

    /** Enqueue an externally prepared request. */
    std::uint64_t
    submit(graph::Minibatch mb, tensor::Tensor feature)
    {
        return engine_.submit(0, std::move(mb), std::move(feature));
    }

    /** Consume one request id without enqueuing (shed arrivals keep a
     *  unique flight-recorder identity); see Engine::reserveId. */
    std::uint64_t reserveId() { return engine_.reserveId(); }

    /** Serve every queued request; returns the cycle's metrics. */
    ServingReport drain() { return engine_.drain(); }

    /**
     * Serve the min(n, queued()) oldest queued requests as ONE
     * micro-batch issued to @p stream, retaining their results
     * alongside any previous ones (use clearResults() to bound
     * memory). Unlike drain(), no timeline is imposed: the caller owns
     * the clock, which is how the online serving layer gates batches
     * on request arrivals and stream availability. Returns the batch's
     * modeled cost (zeroed when the queue is empty).
     */
    BatchCost
    serveOldest(std::size_t n, int stream = 0)
    {
        return engine_.serveOldest(0, n, stream);
    }

    /** Fail-fast cancel the min(n, queued()) oldest queued requests
     *  without serving them; returns the dropped ids in queue order.
     *  See Engine::dropOldest. */
    std::vector<std::uint64_t>
    dropOldest(std::size_t n)
    {
        return engine_.dropOldest(0, n);
    }

    /** Re-issue the oldest queued request as a hedge batch-of-1 on
     *  @p stream without popping it; see Engine::hedgeOldest. */
    BatchCost
    hedgeOldest(int stream = 0)
    {
        return engine_.hedgeOldest(0, stream);
    }

    /** Drop all retained request results (bounded-memory serving). */
    void clearResults() { engine_.clearResults(); }

    /**
     * Output of a served request, [its subgraph nodes, dout]; nullptr
     * until the request's drain cycle ran. Results are retained only
     * until the next drain cycle starts (the session stays
     * bounded-memory no matter how many requests it serves).
     */
    const tensor::Tensor *
    result(std::uint64_t id) const
    {
        return engine_.result(id);
    }

    /** Modeled per-request latencies of the last drain cycle, ms. */
    const std::vector<double> &
    lastLatenciesMs() const
    {
        return engine_.lastLatenciesMs();
    }

    PlanCache &planCache() { return engine_.planCache(); }
    models::WeightMap &weights() { return engine_.weights(0); }
    const ServingConfig &config() const { return cfg_; }
    std::size_t queued() const { return engine_.queued(); }

    /** The engine behind the façade (multi-tenant observability:
     *  schedule keys, cache budget, plan events). */
    Engine &engine() { return engine_; }

  private:
    ServingConfig cfg_;
    Engine engine_;
};

} // namespace hector::serve

#endif // HECTOR_SERVE_SESSION_HH
