/**
 * @file
 * ServingSession: the façade of the inference serving runtime.
 *
 * A session serves one model over one host-resident graph, the way a
 * production deployment keeps a trained RGNN resident and answers a
 * stream of neighborhood queries. submit() samples (or accepts) a
 * per-request subgraph block, pays the modeled host-to-device
 * transfer, and queues it; drain() compiles-or-reuses the plan through
 * the PlanCache, coalesces queued requests into micro-batches of at
 * most `maxBatch`, multiplexes the batches over `numStreams` simulated
 * streams, and reports modeled throughput and per-request latency.
 *
 * The serving pipeline is the first subsystem layered on *top* of the
 * compiler: it only consumes the public compile/execute API, never the
 * IR internals.
 */

#ifndef HECTOR_SERVE_SESSION_HH
#define HECTOR_SERVE_SESSION_HH

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "graph/sampler.hh"
#include "models/models.hh"
#include "serve/micro_batch.hh"
#include "serve/plan_cache.hh"
#include "serve/stream_scheduler.hh"

namespace hector::serve
{

/** Serving-time knobs. */
struct ServingConfig
{
    /** Max requests coalesced into one micro-batch. */
    std::size_t maxBatch = 8;
    /** Simulated device streams to multiplex batches over. */
    int numStreams = 1;
    /** Per-request subgraph sampling parameters. */
    graph::SampleSpec sample;
    /** Plan compilation options (inference by default). */
    core::CompileOptions compile;
    std::int64_t din = 32;
    std::int64_t dout = 32;
    /** Seed for request sampling and weight initialization. */
    std::uint64_t seed = 0x5e12e;
    /**
     * Per-request deadline SLO in milliseconds, measured from arrival
     * (online) or submission (drain cycles). 0 disables the SLO, in
     * which case reports show full attainment.
     */
    double deadlineMs = 0.0;
    /**
     * Back executor intermediates with the session's pooled arena
     * (core::MemoryPlan): zero hot-path tensor allocations in steady
     * state. Off = the seed's allocate-per-request behavior, kept as
     * the honest baseline for bench_exec_wallclock.
     */
    bool useArena = true;
};

/** One drain cycle's modeled serving metrics. */
struct ServingReport
{
    std::size_t requests = 0;
    std::size_t batches = 0;
    /** Modeled completion time of the whole cycle (transfers + exec). */
    double makespanMs = 0.0;
    double throughputReqPerSec = 0.0;
    double meanLatencyMs = 0.0;
    double p50LatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    double maxLatencyMs = 0.0;
    /**
     * Mean time a request spent waiting (arrival/submission to the
     * start of its batch's device execution), excluding the batch's
     * own service time.
     */
    double meanQueueDelayMs = 0.0;
    /**
     * Fraction of requests whose arrival-relative latency met the
     * configured deadline SLO; 1 when no deadline is configured.
     */
    double sloAttainment = 1.0;
    /** Makespan divided by requests: the bench's headline metric. */
    double msPerRequest = 0.0;
    /** Cumulative plan-cache stats at the end of the cycle. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** Kernel launches issued during the cycle. */
    std::uint64_t launches = 0;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample; @p q in
 * [0, 1]. Returns 0 on an empty sample.
 */
double percentileSorted(const std::vector<double> &sorted, double q);

/**
 * Fill @p report's latency fields (mean/p50/p95/p99/max, mean queue
 * delay, SLO attainment against @p deadline_ms) from per-request
 * samples in seconds. The one place this arithmetic lives: the
 * single-device and sharded drain paths both report through it.
 */
void fillLatencyStats(ServingReport &report,
                      const std::vector<double> &latencies_sec,
                      const std::vector<double> &queue_delays_sec,
                      double deadline_ms);

/** Modeled cost of one micro-batch served by serveOldest(). */
struct BatchCost
{
    std::size_t requests = 0;
    /** Host-serialized time: launch overheads + host-side work. */
    double overheadSec = 0.0;
    /** Device-side execution time of the batch's kernels. */
    double execSec = 0.0;
};

class ServingSession
{
  public:
    /**
     * @param g             host-resident full graph (outlives session)
     * @param host_features host-resident node features, [nodes, din]
     * @param model_source  model in the textual DSL (model_sources.hh)
     */
    ServingSession(const graph::HeteroGraph &g,
                   tensor::Tensor host_features, std::string model_source,
                   ServingConfig cfg, sim::Runtime &rt);

    /**
     * Sample a neighborhood query, pay its host-to-device transfer,
     * and enqueue it. Returns the request id.
     */
    std::uint64_t submit();

    /** Enqueue an externally prepared request. */
    std::uint64_t submit(graph::Minibatch mb, tensor::Tensor feature);

    /** Serve every queued request; returns the cycle's metrics. */
    ServingReport drain();

    /**
     * Serve the min(n, queued()) oldest queued requests as ONE
     * micro-batch issued to @p stream, retaining their results
     * alongside any previous ones (use clearResults() to bound
     * memory). Unlike drain(), no timeline is imposed: the caller owns
     * the clock, which is how the online serving layer gates batches
     * on request arrivals and stream availability. Returns the batch's
     * modeled cost (zeroed when the queue is empty).
     */
    BatchCost serveOldest(std::size_t n, int stream = 0);

    /** Drop all retained request results (bounded-memory serving). */
    void clearResults() { results_.clear(); }

    /**
     * Output of a served request, [its subgraph nodes, dout]; nullptr
     * until the request's drain cycle ran. Results are retained only
     * until the next drain cycle starts (the session stays
     * bounded-memory no matter how many requests it serves).
     */
    const tensor::Tensor *result(std::uint64_t id) const;

    /** Modeled per-request latencies of the last drain cycle, ms. */
    const std::vector<double> &lastLatenciesMs() const
    {
        return lastLatenciesMs_;
    }

    PlanCache &planCache() { return cache_; }
    models::WeightMap &weights() { return weights_; }
    const ServingConfig &config() const { return cfg_; }
    std::size_t queued() const { return queue_.size(); }

  private:
    const graph::HeteroGraph &g_;
    tensor::Tensor hostFeatures_;
    std::string modelSource_;
    ServingConfig cfg_;
    sim::Runtime &rt_;

    PlanCache cache_;
    models::WeightMap weights_;
    std::mt19937_64 rng_;

    /** Pooled execution context: arena slot buffers survive across
     *  drain cycles, so steady-state serving does not allocate. */
    core::ExecutionContext execCtx_;
    models::WeightMap execGrads_;

    std::vector<Request> queue_;
    std::map<std::uint64_t, tensor::Tensor> results_;
    std::vector<double> lastLatenciesMs_;
    /** Host-serialized transfer time accrued by queued submits. */
    double pendingHostSec_ = 0.0;
    std::uint64_t nextId_ = 1;
};

} // namespace hector::serve

#endif // HECTOR_SERVE_SESSION_HH
