#include "serve/resilience.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace hector::serve
{

ResilienceManager::ResilienceManager(ResilienceConfig cfg,
                                     std::size_t num_lanes)
    : cfg_(cfg), breakers_(num_lanes), rng_(cfg.retrySeed)
{
    if (num_lanes == 0)
        throw std::invalid_argument(
            "ResilienceManager: num_lanes must be >= 1");
}

bool
ResilienceManager::deadlineExpired(double arrival_sec,
                                   double deadline_sec, double now_sec,
                                   double est_service_sec) const
{
    if (!cfg_.failFast || deadline_sec <= 0.0)
        return false;
    const double start = std::max(now_sec, arrival_sec);
    return start + est_service_sec > arrival_sec + deadline_sec;
}

void
ResilienceManager::recordTimeout(std::uint64_t id, std::size_t lane,
                                 int device, double arrival_sec,
                                 double now_sec)
{
    (void)arrival_sec;
    ++stats_.requestsTimedOut;
    if (flight_)
        flight_->event(id, "timeout", now_sec, device,
                       "reason=deadline-expired");
    if (obs::enabled()) {
        obs::metrics().counter("resilience.requests_timed_out").inc();
        obs::tracer().instant("timeout", "resilience", now_sec, device,
                              0,
                              "\"reason\":\"deadline-expired\",\"id\":" +
                                  std::to_string(id));
    }
    // Deliberately NOT a breaker failure: deadline expiry is an
    // overload signal (the bounded queue and brownout own that story),
    // not evidence the lane's device is sick. Feeding timeouts to the
    // breaker couples the two control loops — a blocked lane makes its
    // heads rot past deadline, each expiry re-opens the breaker at the
    // half-open probe, and the lane never recovers.
    (void)lane;
}

double
ResilienceManager::backoffSec(int attempt)
{
    double base = cfg_.retryBackoffMs * 1e-3;
    for (int i = 1; i < attempt; ++i)
        base *= cfg_.retryBackoffMultiplier;
    base = std::min(base, cfg_.retryBackoffCapMs * 1e-3);
    // Same raw-bits -> uniform mapping as LoadGenerator: bit-stable
    // across platforms, one draw per decision.
    const double u =
        (static_cast<double>(rng_() >> 11) + 0.5) * 0x1.0p-53;
    const double j = cfg_.retryJitterFraction;
    return base * (1.0 - j / 2.0 + j * u);
}

ResilienceManager::RetryDecision
ResilienceManager::onFailure(std::uint64_t id, std::size_t lane,
                             int device, double now_sec,
                             const char *reason, int prior_attempts)
{
    RetryDecision d;
    d.attempt = prior_attempts + 1;
    if (d.attempt <= cfg_.maxRetries) {
        d.retry = true;
        d.notBeforeSec = now_sec + backoffSec(d.attempt);
        ++stats_.requestsRetried;
        if (flight_)
            flight_->event(id, "retry", now_sec, device,
                           std::string("reason=") + reason +
                               " attempt=" + std::to_string(d.attempt));
        if (obs::enabled()) {
            obs::metrics().counter("resilience.requests_retried").inc();
            obs::tracer().instant(
                "retry", "resilience", now_sec, device, 0,
                std::string("\"reason\":\"") + reason +
                    "\",\"attempt\":" + std::to_string(d.attempt) +
                    ",\"id\":" + std::to_string(id));
        }
    } else {
        ++stats_.requestsFailed;
        if (flight_)
            flight_->event(id, "failed", now_sec, device,
                           std::string("reason=") + reason +
                               " attempts-exhausted");
        if (obs::enabled()) {
            obs::metrics().counter("resilience.requests_failed").inc();
            obs::tracer().instant(
                "retry", "resilience", now_sec, device, 0,
                std::string("\"reason\":\"") + reason +
                    "-exhausted\",\"id\":" + std::to_string(id));
        }
    }
    noteFailure(lane, now_sec, reason);
    return d;
}

void
ResilienceManager::observeLatency(double latency_sec)
{
    if (!latencyObserved_) {
        ewmaLatencySec_ = latency_sec;
        latencyObserved_ = true;
        return;
    }
    // Fixed smoothing keeps the trigger stable against single spikes
    // while still tracking load shifts within a few tens of requests.
    constexpr double kAlpha = 0.1;
    ewmaLatencySec_ =
        (1.0 - kAlpha) * ewmaLatencySec_ + kAlpha * latency_sec;
}

bool
ResilienceManager::hedgeReady() const
{
    return cfg_.hedge && latencyObserved_ && brownoutLevel_ < 1 &&
           ewmaLatencySec_ > 0.0;
}

double
ResilienceManager::hedgeDelaySec() const
{
    return cfg_.hedgeDelayFactor * ewmaLatencySec_;
}

void
ResilienceManager::recordHedge(std::uint64_t id, std::size_t lane,
                               int device, double now_sec,
                               double waited_sec)
{
    (void)lane;
    ++stats_.requestsHedged;
    if (flight_)
        flight_->event(id, "hedge", now_sec, device,
                       "reason=hedge-issued waited_ms=" +
                           std::to_string(waited_sec * 1e3));
    if (obs::enabled()) {
        obs::metrics().counter("resilience.requests_hedged").inc();
        obs::tracer().instant("hedge", "resilience", now_sec, device, 0,
                              "\"reason\":\"hedge-issued\",\"id\":" +
                                  std::to_string(id));
    }
}

void
ResilienceManager::recordHedgeOutcome(std::uint64_t id, int device,
                                      double now_sec, bool hedge_won)
{
    const char *reason =
        hedge_won ? "hedge-win" : "duplicate-discarded";
    if (hedge_won) {
        ++stats_.hedgeWins;
        if (obs::enabled())
            obs::metrics().counter("resilience.hedge_wins").inc();
    }
    if (flight_)
        flight_->event(id, "hedge-outcome", now_sec, device,
                       std::string("reason=") + reason);
    if (obs::enabled())
        obs::tracer().instant("hedge", "resilience", now_sec, device, 0,
                              std::string("\"reason\":\"") + reason +
                                  "\",\"id\":" + std::to_string(id));
}

void
ResilienceManager::noteSuccess(std::size_t lane, double now_sec)
{
    if (lane >= breakers_.size())
        return;
    Breaker &b = breakers_[lane];
    b.consecutive = 0;
    if (b.state != Breaker::State::Closed) {
        b.state = Breaker::State::Closed;
        ++stats_.breakerCloses;
        emitInstant("breaker", now_sec, static_cast<int>(lane),
                    "\"reason\":\"close\",\"lane\":" +
                        std::to_string(lane));
        if (obs::enabled())
            obs::metrics().counter("resilience.breaker_closes").inc();
    }
}

void
ResilienceManager::noteAdmit(std::size_t lane)
{
    // An accepted admission proves the lane is draining; without this
    // a shed storm at a full-but-healthy queue would open the breaker.
    if (lane < breakers_.size() &&
        breakers_[lane].state == Breaker::State::Closed)
        breakers_[lane].consecutive = 0;
}

void
ResilienceManager::noteFailure(std::size_t lane, double now_sec,
                               const char *what)
{
    if (lane >= breakers_.size())
        return;
    Breaker &b = breakers_[lane];
    ++b.consecutive;
    const bool trip =
        b.state == Breaker::State::HalfOpen ||
        (b.state == Breaker::State::Closed &&
         b.consecutive >= cfg_.breakerFailureThreshold);
    if (!trip)
        return;
    b.state = Breaker::State::Open;
    b.consecutive = 0;
    b.openUntilSec = now_sec + cfg_.breakerOpenMs * 1e-3;
    ++stats_.breakerOpens;
    emitInstant("breaker", now_sec, static_cast<int>(lane),
                std::string("\"reason\":\"open\",\"cause\":\"") + what +
                    "\",\"lane\":" + std::to_string(lane));
    if (obs::enabled())
        obs::metrics().counter("resilience.breaker_opens").inc();
}

bool
ResilienceManager::blocked(std::size_t lane, double now_sec)
{
    if (lane >= breakers_.size())
        return false;
    Breaker &b = breakers_[lane];
    if (b.state != Breaker::State::Open)
        return false;
    if (now_sec < b.openUntilSec)
        return true;
    b.state = Breaker::State::HalfOpen;
    emitInstant("breaker", now_sec, static_cast<int>(lane),
                "\"reason\":\"half-open\",\"lane\":" +
                    std::to_string(lane));
    return false;
}

const char *
ResilienceManager::breakerState(std::size_t lane) const
{
    if (lane >= breakers_.size())
        return "closed";
    switch (breakers_[lane].state) {
    case Breaker::State::Open:
        return "open";
    case Breaker::State::HalfOpen:
        return "half-open";
    case Breaker::State::Closed:
    default:
        return "closed";
    }
}

void
ResilienceManager::tickBrownout(std::size_t depth, std::size_t bound,
                                double now_sec)
{
    int level = brownoutLevel_;
    if (bound == 0) {
        level = 0;
    } else {
        const double frac = static_cast<double>(depth) /
                            static_cast<double>(bound);
        // Hysteresis: step up past the high watermark, all the way
        // back down only below the low one — no flapping at the edge.
        if (frac >= cfg_.brownoutHighWatermark)
            level = std::min(2, level + 1);
        else if (frac < cfg_.brownoutLowWatermark)
            level = 0;
    }
    if (level != brownoutLevel_) {
        brownoutLevel_ = level;
        stats_.maxBrownoutLevel =
            std::max(stats_.maxBrownoutLevel, level);
        emitInstant("brownout", now_sec, 0,
                    "\"reason\":\"level-" + std::to_string(level) +
                        "\"");
        if (obs::enabled())
            obs::metrics()
                .gauge("resilience.brownout_level")
                .set(static_cast<double>(level));
    }
    if (brownoutLevel_ > 0)
        ++stats_.brownoutTicks;
}

void
ResilienceManager::emitInstant(const char *name, double t_sec,
                               int device,
                               const std::string &reason_args)
{
    if (obs::enabled())
        obs::tracer().instant(name, "resilience", t_sec, device, 0,
                              reason_args);
}

} // namespace hector::serve
