/**
 * @file
 * Multi-tenant serving engine: one session, many plans.
 *
 * Production RGNN serving faces heterogeneous traffic — different
 * models, different feature dimensions, different compile options —
 * against one host-resident graph. The Engine owns what the
 * single-model ServingSession used to hard-wire: a registry of named
 * *model variants* (model source x CompileOptions x din/dout), one
 * bounded PlanCache shared across them, per-variant weights / request
 * RNG / pooled arena ExecutionContexts, and per-variant FIFO queues.
 * Every request carries its variant id, and the micro-batcher
 * coalesces only same-variant requests: a drain cycle interleaves the
 * per-variant batches over the shared streams in global submission
 * order, so per-request outputs stay bit-identical to a dedicated
 * single-variant session at any thread count.
 *
 * Two policies ride on the registry:
 *
 *  - bounded plan memory: each cached plan is priced at its modeled
 *    resident cost (generated plan + arena slots + variant weights)
 *    and the cache evicts least-recently-used unpinned plans past the
 *    byte budget (PlanCache); evicted variants recompile
 *    deterministically on their next request, counted separately from
 *    first-time misses;
 *
 *  - autotuned GEMM schedules: on a variant's first compile the engine
 *    sweeps core::autotuneSchedules on a representative sampled
 *    subgraph and compiles the plan with the winning schedule, keyed
 *    by (variant, shape bucket) and memoized across evictions — the
 *    executor's blocked GEMM consumes the schedule's k-block, which
 *    never changes output bits (see tensor::blocked::kBlockFor).
 *
 * ServingSession and ShardedSession are façades over this machinery:
 * the session wraps an Engine with one registered variant, the sharded
 * session shares the weight-construction helper and the PlanCompiler.
 */

#ifndef HECTOR_SERVE_ENGINE_HH
#define HECTOR_SERVE_ENGINE_HH

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/executor.hh"
#include "graph/sampler.hh"
#include "models/models.hh"
#include "obs/flight_recorder.hh"
#include "serve/micro_batch.hh"
#include "serve/plan_cache.hh"
#include "serve/stream_scheduler.hh"

namespace hector::serve
{

/** Load-shedding mode of the online layer's admission control. */
enum class ShedMode
{
    /** No admission control: the queue grows without bound (the
     *  historical behavior, and the BENCH_serving_online 2x-overload
     *  pathology — every queued request blows its deadline). */
    None,
    /** Reject an arrival outright once the lane's queue stands at
     *  maxQueueDepth (newest-loses; deterministic). */
    RejectNewest,
    /** RejectNewest, plus drop arrivals whose deadline the calibrated
     *  cost model already predicts unmeetable behind the backlog
     *  ahead of them. */
    DeadlineInfeasible,
};

/**
 * Two-state Markov-modulated Poisson (MMPP) arrival knobs: the lane's
 * Poisson process switches between a baseline state (ServingConfig's
 * offered rate) and a burst state (rate x burstRateMultiplier), with
 * per-arrival transition probabilities. Drawn from the same seeded
 * mt19937_64 stream as the pure-Poisson path, so arrival sequences
 * stay bit-stable across platforms and reruns.
 */
struct MmppSpec
{
    bool enabled = false;
    /** Burst-state rate multiplier (> 0; 1 degenerates to Poisson). */
    double burstRateMultiplier = 8.0;
    /** Per-arrival probability of entering the burst state, [0, 1]. */
    double pEnterBurst = 0.02;
    /** Per-arrival probability of leaving the burst state, [0, 1]. */
    double pExitBurst = 0.1;
};

/**
 * Diurnal (sinusoidal) rate modulation of an arrival process: the
 * instantaneous rate is rate x (1 + amplitude x sin(2 pi t / period)),
 * evaluated at each gap's start (a piecewise-constant-rate
 * approximation of the non-homogeneous Poisson process). One uniform
 * per arrival, same as the pure-Poisson path, so the disabled path is
 * bit-identical to the historical stream and the enabled path stays
 * bit-stable across platforms and thread counts. Composes with MMPP
 * (the burst multiplier applies on top of the diurnal rate).
 */
struct DiurnalSpec
{
    bool enabled = false;
    /** Peak-to-mean modulation depth, in [0, 1). */
    double amplitude = 0.5;
    /** Period of the modulation in simulated seconds (> 0). */
    double periodSec = 1.0;
};

/**
 * Request-resilience knobs of the online serving layer (see
 * serve/resilience.hh): deadline fail-fast, seeded retry with capped
 * exponential backoff, hedged requests, per-lane circuit breakers and
 * brownout degradation. Default-disabled; with `enabled = false` the
 * serving timeline is bit-identical to a build without the layer.
 */
struct ResilienceConfig
{
    bool enabled = false;

    /**
     * Fail a queued request fast once the policy's calibrated service
     * estimate says its remaining deadline budget cannot be met
     * (timeout cancellation). Only meaningful with a deadline.
     */
    bool failFast = true;

    /** Retry attempts after the first failure (0 disables retries). */
    int maxRetries = 2;
    /** Initial retry backoff, milliseconds (>= 0). */
    double retryBackoffMs = 1.0;
    /** Exponential backoff multiplier per attempt (>= 1). */
    double retryBackoffMultiplier = 2.0;
    /** Backoff cap, milliseconds (>= retryBackoffMs). */
    double retryBackoffCapMs = 50.0;
    /** Jitter fraction in [0, 1]: each backoff is scaled by a seeded
     *  uniform in [1 - j/2, 1 + j/2] so synchronized retry storms
     *  de-correlate deterministically. */
    double retryJitterFraction = 0.1;
    /** Seed of the backoff-jitter stream. */
    std::uint64_t retrySeed = 0x7e517;

    /** Hedge the oldest queued request onto a second lane/stream once
     *  it has waited hedgeDelayFactor x the observed latency EWMA. */
    bool hedge = false;
    /** Hedge delay as a multiple of the latency EWMA (> 0). */
    double hedgeDelayFactor = 3.0;

    /** Consecutive failures/sheds on a lane that open its breaker
     *  (>= 1). */
    int breakerFailureThreshold = 8;
    /** How long an open breaker blocks its lane before the half-open
     *  probe, milliseconds (>= 0). */
    double breakerOpenMs = 10.0;

    /** Brownout high water mark: lane queue depth as a fraction of
     *  maxQueueDepth above which degradation steps up (hedging off
     *  first, then redundant duplication off). In (0, 1]. */
    double brownoutHighWatermark = 0.75;
    /** Low water mark below which degradation steps back down; must be
     *  < brownoutHighWatermark and >= 0. */
    double brownoutLowWatermark = 0.25;
};

/** Serving-time knobs (per variant in multi-tenant serving). */
struct ServingConfig
{
    /** Max requests coalesced into one micro-batch. */
    std::size_t maxBatch = 8;
    /** Simulated device streams to multiplex batches over. */
    int numStreams = 1;
    /** Per-request subgraph sampling parameters. */
    graph::SampleSpec sample;
    /** Plan compilation options (inference by default). */
    core::CompileOptions compile;
    std::int64_t din = 32;
    std::int64_t dout = 32;
    /** Seed for request sampling and weight initialization. */
    std::uint64_t seed = 0x5e12e;
    /**
     * Per-request deadline SLO in milliseconds, measured from arrival
     * (online) or submission (drain cycles). 0 disables the SLO, in
     * which case reports show full attainment.
     */
    double deadlineMs = 0.0;
    /**
     * Back executor intermediates with the session's pooled arena
     * (core::MemoryPlan): zero hot-path tensor allocations in steady
     * state. Off = the seed's allocate-per-request behavior, kept as
     * the honest baseline for bench_exec_wallclock.
     */
    bool useArena = true;
    /**
     * Plan-cache resident-byte budget (modeled plan + arena + weight
     * bytes); 0 = unbounded. In an Engine the budget is engine-wide
     * (EngineConfig); here it seeds the façade's engine.
     */
    std::size_t planBudgetBytes = 0;
    /** Autotune the GEMM schedule on the variant's first compile. */
    bool autotuneSchedules = false;
    /**
     * ASPIS-style redundant execution: the fraction of micro-batches
     * dual-issued on spare stream capacity and compared by output
     * checksum (tensor::checksum). A mismatch is a detected transient
     * fault; the batch is replayed and the replayed outputs are the
     * ones served, so detected corruptions never reach a client. 0
     * (default) disables redundancy; 1 duplicates every batch —
     * detection coverage equals the sampled fraction of batches, paid
     * for in duplicate execution time. Batches are sampled
     * deterministically (an error-diffusion accumulator, not a random
     * draw), so the same workload duplicates the same batches in
     * every run and at every thread count.
     */
    double duplicationFraction = 0.0;
    /**
     * Admission bound on this variant's queue in the online layer
     * (requests queued but not yet served); 0 = unbounded. Must be
     * > 0 when shed != ShedMode::None — an admission policy with
     * nothing to bound is a configuration error.
     */
    std::size_t maxQueueDepth = 0;
    /** Load shedding at admission once the bound (or the deadline
     *  feasibility check) trips; shed decisions are deterministic and
     *  recorded per request in the flight recorder. */
    ShedMode shed = ShedMode::None;
    /** Weighted-fair share under the "wfq" scheduling policy; must be
     *  finite and > 0. */
    double tenantWeight = 1.0;
    /** Priority tier under "wfq": lower tiers are served strictly
     *  first (0 = most latency-critical); must be >= 0. */
    int tenantTier = 0;
    /** Bursty arrivals: two-state MMPP modulation of this variant's
     *  open-loop arrival process. */
    MmppSpec mmpp;
    /** Diurnal (sinusoidal) modulation of this variant's open-loop
     *  arrival rate; composes with mmpp. */
    DiurnalSpec diurnal;
    /** Request-resilience layer of the online loops (deadline
     *  fail-fast, retries, hedging, circuit breakers, brownout). */
    ResilienceConfig resilience;
};

/**
 * Validate @p cfg, throwing std::invalid_argument naming the offending
 * field. Every serving entry point (ServingSession, ShardedSession,
 * Engine::registerVariant, OnlineServer) validates through here, so a
 * zero maxBatch or negative deadline fails loudly at construction
 * instead of silently misbehaving mid-serve.
 *
 * @param who  constructor name used as the message prefix
 */
void validateServingConfig(const ServingConfig &cfg, const char *who);

/**
 * The single construction path for per-variant weights: parse the
 * pristine (pre-pass) program — so weights match what a training
 * pipeline would have produced — and draw every parameter from @p rng
 * in declaration order. ServingSession (via the engine), ShardedSession
 * and the Engine registry all build weights here; the caller seeds
 * @p rng with the variant's ServingConfig::seed *before* this call and
 * keeps drawing its request-sampling stream from the same generator
 * after it, which is what makes a dedicated session and an engine
 * variant serve identical request streams with identical weights.
 */
models::WeightMap initVariantWeights(const std::string &model_source,
                                     std::int64_t din, std::int64_t dout,
                                     const graph::HeteroGraph &g,
                                     std::mt19937_64 &rng);

/** Per-variant latency/SLO rows of a multi-tenant report. */
struct VariantReport
{
    std::string name;
    std::size_t requests = 0;
    double meanLatencyMs = 0.0;
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    /** Attainment over the variant's ADMITTED requests (shed arrivals
     *  are tallied separately in requestsShed). */
    double sloAttainment = 1.0;
    /** The variant's arrivals rejected at admission (online layer). */
    std::size_t requestsShed = 0;
};

/** One drain cycle's modeled serving metrics. */
struct ServingReport
{
    std::size_t requests = 0;
    std::size_t batches = 0;
    /** Modeled completion time of the whole cycle (transfers + exec). */
    double makespanMs = 0.0;
    double throughputReqPerSec = 0.0;
    double meanLatencyMs = 0.0;
    double p50LatencyMs = 0.0;
    double p95LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    /** Nearest-rank p99.9 — the tail the 10^6-request soaks gate on. */
    double p999LatencyMs = 0.0;
    double maxLatencyMs = 0.0;
    /**
     * Mean time a request spent waiting (arrival/submission to the
     * start of its batch's device execution), excluding the batch's
     * own service time.
     */
    double meanQueueDelayMs = 0.0;
    /**
     * Fraction of requests whose arrival-relative latency met the
     * configured deadline SLO; 1 when no deadline is configured. In a
     * multi-variant cycle each request is judged against its own
     * variant's deadline.
     */
    double sloAttainment = 1.0;
    /** Makespan divided by requests: the bench's headline metric. */
    double msPerRequest = 0.0;
    /** Cumulative plan-cache stats at the end of the cycle. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    /** Eviction-forced recompiles (bounded plan cache). */
    std::uint64_t cacheRecompiles = 0;
    /** Plans evicted under the cache's byte budget so far. */
    std::uint64_t cacheEvictions = 0;
    /** Modeled bytes of the plans resident after the cycle. */
    std::size_t cacheResidentBytes = 0;
    /** Kernel launches issued during the cycle. */
    std::uint64_t launches = 0;
    /** Per-variant breakdown (one row per variant served). */
    std::vector<VariantReport> perVariant;
};

/**
 * Nearest-rank percentile of an ascending-sorted sample; @p q in
 * [0, 1]. Returns 0 on an empty sample.
 */
double percentileSorted(const std::vector<double> &sorted, double q);

/**
 * Fill @p report's latency fields (mean/p50/p95/p99/max, mean queue
 * delay, SLO attainment against @p deadline_ms) from per-request
 * samples in seconds. The one place this arithmetic lives: the
 * single-device, sharded and engine drain paths all report through it.
 */
void fillLatencyStats(ServingReport &report,
                      const std::vector<double> &latencies_sec,
                      const std::vector<double> &queue_delays_sec,
                      double deadline_ms);

/** Copy @p stats into the report's cache* fields — the one place the
 *  plan-cache counters map onto reports, shared by every serving
 *  path (engine/session drain, sharded drain, all online modes). */
void fillCacheStats(ServingReport &report, const PlanCache::Stats &stats);

/**
 * Build one per-variant report row from that variant's latency
 * samples (seconds, any order; sorted in place) judged against its
 * own deadline — shared by Engine::drain and the multi-tenant online
 * loop so the two per-tenant reports cannot drift.
 */
VariantReport makeVariantReport(const std::string &name,
                                std::vector<double> &latencies_sec,
                                double deadline_ms);

/** Accumulate the (after - before) plan-cache stat deltas into the
 *  device's plan-lifecycle counters — the one delta-bookkeeping path
 *  for every cache lookup and budget re-enforcement site. */
void recordPlanEvents(sim::PlanEvents &events,
                      const PlanCache::Stats &before,
                      const PlanCache::Stats &after);

/** Modeled cost of one micro-batch served by serveOldest(). */
struct BatchCost
{
    std::size_t requests = 0;
    /** Host-serialized time: launch overheads + host-side work. */
    double overheadSec = 0.0;
    /** Device-side execution time of the batch's kernels. */
    double execSec = 0.0;
    /**
     * Request ids served in this batch, queue order. The online loops
     * own the timeline (they know when the batch actually starts and
     * completes on the open-loop clock), so they need the ids to
     * attribute exec-start/completion flight-recorder events.
     */
    std::vector<std::uint64_t> servedIds;
};

/**
 * Per-variant compile closure shared by the Engine and ShardedSession:
 * parses the model, optionally autotunes the GEMM schedule on a
 * representative sampled subgraph (memoized, so an evicted plan
 * recompiles to the identical schedule without re-tuning), compiles
 * with the effective schedule, and prices the plan's modeled resident
 * cost (generated plan + arena slot + weight bytes) for the bounded
 * PlanCache.
 */
class PlanCompiler
{
  public:
    /**
     * @param label variant name, prefixed onto the schedule key
     * @param autotune_schedules sweep core::autotuneSchedules on the
     *        first compile; off keeps the config's schedule verbatim
     */
    PlanCompiler(const graph::HeteroGraph &g, std::string label,
                 ServingConfig cfg, bool autotune_schedules);

    /**
     * CompileFn body for @p key. @p host_features and @p weights
     * belong to the variant: features feed the tuning run, weight
     * bytes enter the plan's modeled cost.
     */
    PlanCache::Compiled compile(const PlanKey &key,
                                const tensor::Tensor &host_features,
                                const models::WeightMap &weights);

    /** "<variant>/n<shape bucket>/<schedule>" once tuned; "" before
     *  the first compile or with tuning off. */
    const std::string &scheduleKey() const { return scheduleKey_; }

    /** The memoized tuned schedule (valid once scheduleKey() != ""). */
    const core::GemmSchedule &tunedSchedule() const { return tunedSched_; }

  private:
    const graph::HeteroGraph *g_;
    std::string label_;
    ServingConfig cfg_;
    bool autotune_;
    bool tuned_ = false;
    core::GemmSchedule tunedSched_{};
    std::string scheduleKey_;
};

/** Engine-wide knobs (the per-variant knobs live in ServingConfig). */
struct EngineConfig
{
    /** Simulated device streams shared by every variant's batches. */
    int numStreams = 1;
    /** PlanCache resident-byte budget; 0 = unbounded. */
    std::size_t planBudgetBytes = 0;
    /** Autotune each variant's GEMM schedule on first compile. */
    bool autotuneSchedules = false;
};

/**
 * The multi-tenant serving engine. One host graph, one simulated
 * device, N registered model variants served through one bounded
 * PlanCache. See the file comment for the design; ServingSession is
 * the single-variant façade.
 */
class Engine
{
  public:
    /** @param g host-resident full graph (outlives the engine). */
    Engine(const graph::HeteroGraph &g, EngineConfig cfg,
           sim::Runtime &rt);

    /**
     * Register a model variant under @p name. @p host_features is the
     * host-resident [nodes, cfg.din] feature tensor this variant
     * samples from (variants may disagree on din). Throws
     * std::invalid_argument on invalid @p cfg or a duplicate name.
     * Returns the dense variant id every request carries.
     */
    int registerVariant(const std::string &name,
                        tensor::Tensor host_features,
                        std::string model_source, ServingConfig cfg);

    int numVariants() const { return static_cast<int>(variants_.size()); }
    /** Id of @p name, or -1. */
    int variantIndex(const std::string &name) const;
    const std::string &variantName(int v) const;
    const ServingConfig &variantConfig(int v) const;

    /**
     * Sample a neighborhood query on variant @p v's seeded stream, pay
     * its host-to-device transfer, and enqueue it. Returns the
     * engine-wide request id.
     */
    std::uint64_t submit(int v);

    /** Enqueue an externally prepared request on variant @p v. */
    std::uint64_t submit(int v, graph::Minibatch mb,
                         tensor::Tensor feature);

    /**
     * Consume one engine-wide request id WITHOUT enqueuing anything.
     * Admission-rejected (shed) arrivals draw their id here so their
     * flight-recorder lifecycle ("arrival" -> "shed") never aliases a
     * served request; ids stay unique and sequential across admitted
     * and shed requests alike.
     */
    std::uint64_t reserveId() { return nextId_++; }

    /**
     * Serve every queued request of every variant: per-variant FIFO
     * micro-batches (never mixing variants), interleaved over the
     * shared streams in global submission order. Returns the cycle's
     * metrics with a per-variant breakdown.
     */
    ServingReport drain();

    /**
     * Serve the min(n, queuedOn(v)) oldest queued requests of variant
     * @p v as ONE micro-batch issued to @p stream, retaining their
     * results. No timeline is imposed: the online serving layer owns
     * the clock. Returns the batch's modeled cost.
     */
    BatchCost serveOldest(int v, std::size_t n, int stream = 0);

    /**
     * Drop the min(n, queuedOn(v)) oldest queued requests of variant
     * @p v WITHOUT serving them (deadline fail-fast cancellation by
     * the resilience layer). Transfer bookkeeping is rebased exactly
     * like serveOldest, so a later drain charges only surviving
     * requests' transfers. Returns the dropped request ids in queue
     * order.
     */
    std::vector<std::uint64_t> dropOldest(int v, std::size_t n);

    /**
     * Execute variant @p v's OLDEST queued request as a duplicate
     * batch-of-1 on @p stream without popping it or storing results —
     * the hedged-request backup run. By batch invariance its output is
     * bit-identical to the primary's, so "first completion wins" can
     * only change the modeled timeline, never a served bit. No fault
     * injection or ASPIS sandwich applies (the hedge IS the backup
     * path). Returns the run's modeled cost; zeroed when the queue is
     * empty.
     */
    BatchCost hedgeOldest(int v, int stream = 0);

    /**
     * Scale every variant's duplicationFraction by @p scale in [0, 1]
     * (brownout degradation: redundancy is shed before requests are).
     * 1 restores the configured fractions; the error-diffusion
     * accumulators are preserved, so scale 1 -> identical sampling.
     */
    void setDuplicationScale(double scale) { dupScale_ = scale; }
    double duplicationScale() const { return dupScale_; }

    /** Drop all retained request results (bounded-memory serving). */
    void clearResults() { results_.clear(); }

    /** Output of a served request; nullptr until served. Results are
     *  retained until the next drain cycle starts. */
    const tensor::Tensor *result(std::uint64_t id) const;

    PlanCache &planCache() { return cache_; }
    /** The cache key variant @p v compiles under (scoped by variant
     *  name — same-model tenants never alias). */
    PlanKey planKey(int v) const;
    models::WeightMap &weights(int v);
    std::size_t queued() const;
    std::size_t queuedOn(int v) const;
    /** Modeled per-request latencies of the last drain cycle, ms, in
     *  batch completion order. */
    const std::vector<double> &lastLatenciesMs() const
    {
        return lastLatenciesMs_;
    }
    /** The (variant, shape bucket, schedule) key of @p v's autotuned
     *  plan; "" before its first compile or with tuning off. */
    const std::string &scheduleKey(int v) const;
    const EngineConfig &config() const { return cfg_; }
    sim::Runtime &runtime() { return rt_; }

    /**
     * Attach a per-request flight recorder (nullptr detaches). While
     * attached — independent of the obs::enabled() tracer switch —
     * every request accrues its lifecycle events (enqueue, plan
     * lookup, batch-join, exec, completion) at modeled timestamps.
     * The recorder must outlive the engine or be detached first.
     */
    void setFlightRecorder(obs::FlightRecorder *fr) { flight_ = fr; }
    obs::FlightRecorder *flightRecorder() const { return flight_; }

  private:
    /** Everything one registered variant owns. */
    struct Variant
    {
        std::string name;
        tensor::Tensor hostFeatures;
        std::string modelSource;
        ServingConfig cfg;
        models::WeightMap weights;
        std::mt19937_64 rng;
        /** Pooled execution context: arena slot buffers survive
         *  across cycles, so steady-state serving never allocates. */
        core::ExecutionContext ctx;
        models::WeightMap grads;
        std::vector<Request> queue;
        PlanCompiler compiler;
        /** Error-diffusion accumulator of the ASPIS dual-issue
         *  sampler (cfg.duplicationFraction); per variant so one
         *  tenant's sampling never perturbs another's. */
        double dupAccum = 0.0;

        Variant(const graph::HeteroGraph &g, std::string name_,
                tensor::Tensor features, std::string source,
                ServingConfig cfg_, bool autotune);
    };

    Variant &at(int v);
    const Variant &at(int v) const;

    /** One plan-cache lookup for variant @p v (compiling through its
     *  PlanCompiler on a miss) with sim::PlanEvents recorded. */
    std::shared_ptr<const core::CompiledModel> planFor(int v);

    const graph::HeteroGraph &g_;
    EngineConfig cfg_;
    sim::Runtime &rt_;
    PlanCache cache_;

    std::vector<Variant> variants_;
    std::map<std::uint64_t, tensor::Tensor> results_;
    std::vector<double> lastLatenciesMs_;
    /**
     * Cumulative host-serialized transfer clock (all variants share
     * the one host thread; never rebased) and the prefix of it already
     * charged to previous cycles. A drain charges only the
     * un-charged remainder, and every request's submitSec is an
     * absolute point on this clock — so serving one variant's oldest
     * requests never erases another variant's accrued queue time.
     */
    double hostClockSec_ = 0.0;
    double chargedHostSec_ = 0.0;
    /** Brownout scale on every variant's duplicationFraction. */
    double dupScale_ = 1.0;
    std::uint64_t nextId_ = 1;
    obs::FlightRecorder *flight_ = nullptr;
};

/**
 * Absorb a ServingReport into the obs metrics registry under
 * @p prefix: latency percentiles land in a histogram-free gauge set
 * (the report's percentiles are already exact), cache stats reuse
 * absorbStats. One emitter path for every bench that snapshots.
 */
void absorbReport(obs::Registry &reg, const ServingReport &report,
                  const std::string &prefix);

} // namespace hector::serve

#endif // HECTOR_SERVE_ENGINE_HH
