/**
 * @file
 * Multi-stream scheduler for the serving runtime.
 *
 * Multiplexes micro-batch executions across N simulated device
 * streams. Each unit of work runs (for real, on the CPU) with the
 * runtime's current stream set, so sim::Runtime's per-stream launch
 * accounting records which stream every kernel was issued to; the
 * scheduler then prices the whole drain cycle with the runtime's
 * overlap/serialization rule (host launch overheads serialize, device
 * execution overlaps up to the streamSerialFraction floor — see
 * Runtime::makespanSec) and derives per-batch completion times for
 * latency reporting.
 */

#ifndef HECTOR_SERVE_STREAM_SCHEDULER_HH
#define HECTOR_SERVE_STREAM_SCHEDULER_HH

#include <functional>
#include <vector>

#include "sim/runtime.hh"

namespace hector::serve
{

/** Accounting for one scheduled unit of work (one micro-batch). */
struct ScheduledBatch
{
    int stream = 0;
    /** Host-serialized time: launch overheads + hostOverhead calls. */
    double overheadSec = 0.0;
    /** Device-side execution time of this batch's kernels. */
    double execSec = 0.0;
    /** Modeled completion time within the drain cycle. */
    double completionSec = 0.0;
};

/** Overhead/exec cost accrued by one measured run on a stream. */
struct StreamRunCost
{
    /** Host-serialized time: launch overheads + hostOverhead calls. */
    double overheadSec = 0.0;
    /** Device-side execution time of the run's kernels. */
    double execSec = 0.0;
};

/**
 * Run @p work with @p rt's current stream set to @p stream and return
 * the cost it accrued there (the stream's launch-overhead and
 * kernel-exec deltas plus the host-serialized time delta), leaving the
 * runtime back on the default stream. The one place the per-batch cost
 * measurement convention lives: StreamScheduler::run,
 * ServingSession::serveOldest and ShardedSession::serveOldestOn all
 * price batches through it.
 */
StreamRunCost runOnStream(sim::Runtime &rt, int stream,
                          const std::function<void()> &work);

class StreamScheduler
{
  public:
    /**
     * @param rt          runtime to account against
     * @param num_streams streams to multiplex over (>= 1)
     */
    StreamScheduler(sim::Runtime &rt, int num_streams);

    /**
     * Run @p work on the least-loaded stream. The callable must issue
     * all of its kernels through the scheduler's runtime; its launch
     * accounting is captured (and returned) as one ScheduledBatch.
     */
    ScheduledBatch run(const std::function<void()> &work);

    int numStreams() const { return numStreams_; }
    const std::vector<ScheduledBatch> &batches() const { return batches_; }

    /**
     * Modeled completion time of everything run so far:
     *   total host time + max(busiest stream, serialFraction * total).
     * Identical to Runtime::makespanSec when the runtime was reset at
     * scheduler construction; kept here per-cycle so a long-lived
     * runtime can serve many drain cycles.
     */
    double makespanSec() const;

    /**
     * Per-batch completion times, uniformly stretched so the last
     * completion equals makespanSec() — the cross-stream contention
     * penalty is distributed proportionally over the timeline.
     */
    std::vector<double> completionTimes() const;

  private:
    sim::Runtime &rt_;
    int numStreams_;
    /** Device busy-until per stream (raw, pre-contention). */
    std::vector<double> streamBusySec_;
    /** Host-serialized clock (launch overheads + host work). */
    double hostClockSec_ = 0.0;
    std::vector<ScheduledBatch> batches_;
};

} // namespace hector::serve

#endif // HECTOR_SERVE_STREAM_SCHEDULER_HH
