/**
 * @file
 * Heterogeneous graph storage used by all execution strategies.
 *
 * Layout follows the paper's defaults: edges are presorted by edge
 * type into contiguous segments (so segment-MM applies directly),
 * with COO row/col arrays plus an etype_ptr offset table; nodes are
 * presorted by node type. A CSR-by-destination view is kept for
 * nodewise aggregation, and per-edge RGCN normalization constants
 * (1 / |N_r(v)|) are precomputed.
 */

#ifndef HECTOR_GRAPH_HETERO_GRAPH_HH
#define HECTOR_GRAPH_HETERO_GRAPH_HH

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace hector::graph
{

/** A single typed edge used during graph construction. */
struct EdgeTriple
{
    std::int64_t src;
    std::int64_t dst;
    std::int32_t etype;
};

/**
 * Immutable heterogeneous graph.
 *
 * Invariants (checked by validate()):
 *  - edges are sorted by etype; etypePtr has numEdgeTypes+1 entries
 *  - nodes are sorted by ntype; ntypePtr has numNodeTypes+1 entries
 *  - every edge's endpoints respect its relation's canonical
 *    (source node type, destination node type)
 *  - the CSR-by-destination view indexes exactly the COO edges
 */
class HeteroGraph
{
  public:
    /**
     * Build a graph from an unsorted edge list.
     *
     * @param node_type   per-node type id; nodes must be presorted by
     *                    type (type ids non-decreasing)
     * @param num_ntypes  number of node types
     * @param num_etypes  number of edge types
     * @param etype_src_nt canonical source node type per edge type
     * @param etype_dst_nt canonical destination node type per edge type
     * @param edges       edge list in any order (sorted internally)
     */
    HeteroGraph(std::vector<std::int32_t> node_type, int num_ntypes,
                int num_etypes, std::vector<std::int32_t> etype_src_nt,
                std::vector<std::int32_t> etype_dst_nt,
                std::vector<EdgeTriple> edges);

    std::int64_t numNodes() const { return numNodes_; }
    std::int64_t numEdges() const { return numEdges_; }
    int numNodeTypes() const { return numNodeTypes_; }
    int numEdgeTypes() const { return numEdgeTypes_; }

    double
    avgDegree() const
    {
        return numNodes_ ? static_cast<double>(numEdges_) / numNodes_ : 0.0;
    }

    /// @name Edgewise arrays (sorted by edge type).
    /// @{
    std::span<const std::int64_t> src() const { return src_; }
    std::span<const std::int64_t> dst() const { return dst_; }
    std::span<const std::int32_t> etype() const { return etype_; }
    /** Per-type edge segment offsets, size numEdgeTypes+1. */
    std::span<const std::int64_t> etypePtr() const { return etypePtr_; }
    /// @}

    /// @name Nodewise arrays (sorted by node type).
    /// @{
    std::span<const std::int32_t> nodeType() const { return nodeType_; }
    /** Per-type node segment offsets, size numNodeTypes+1. */
    std::span<const std::int64_t> ntypePtr() const { return ntypePtr_; }
    /// @}

    /// @name Relation metadata.
    /// @{
    std::int32_t etypeSrcNtype(int r) const { return etypeSrcNt_[r]; }
    std::int32_t etypeDstNtype(int r) const { return etypeDstNt_[r]; }
    std::int64_t
    numEdgesOfType(int r) const
    {
        return etypePtr_[r + 1] - etypePtr_[r];
    }
    /// @}

    /// @name CSR by destination (for nodewise aggregation).
    /// @{
    /** Offsets into inEdgeIds(), size numNodes+1. */
    std::span<const std::int64_t> inPtr() const { return inPtr_; }
    /** Edge ids grouped by destination node. */
    std::span<const std::int64_t> inEdgeIds() const { return inEdgeIds_; }
    std::int64_t
    inDegree(std::int64_t v) const
    {
        return inPtr_[v + 1] - inPtr_[v];
    }
    /// @}

    /** Per-edge RGCN normalization 1 / |N_r(dst)|. */
    std::span<const float> rgcnNorm() const { return rgcnNorm_; }

    /** Average in-degree over nodes with at least one in-edge. */
    double avgNonzeroInDegree() const;

    /** Bytes of adjacency structure (for footprint accounting). */
    std::size_t structureBytes() const;

    /**
     * Canonical encoding of the graph *schema*: node/edge type counts
     * and each relation's canonical (source, destination) node types —
     * everything a compiled plan depends on, and nothing about the
     * concrete nodes/edges (plans are graph-independent). Two graphs
     * with equal signatures can share one compiled plan.
     */
    std::string schemaSignature() const;

    /**
     * True when @p o has the same schema (type counts and relation
     * endpoint types). Equivalent to comparing schemaSignature()s
     * without building the strings — the serving micro-batcher checks
     * this per request per batch.
     */
    bool sameSchema(const HeteroGraph &o) const;

    /** @throws std::runtime_error on any violated invariant. */
    void validate() const;

  private:
    std::int64_t numNodes_;
    std::int64_t numEdges_;
    int numNodeTypes_;
    int numEdgeTypes_;

    std::vector<std::int32_t> nodeType_;
    std::vector<std::int64_t> ntypePtr_;
    std::vector<std::int32_t> etypeSrcNt_;
    std::vector<std::int32_t> etypeDstNt_;

    std::vector<std::int64_t> src_;
    std::vector<std::int64_t> dst_;
    std::vector<std::int32_t> etype_;
    std::vector<std::int64_t> etypePtr_;

    std::vector<std::int64_t> inPtr_;
    std::vector<std::int64_t> inEdgeIds_;

    std::vector<float> rgcnNorm_;
};

} // namespace hector::graph

#endif // HECTOR_GRAPH_HETERO_GRAPH_HH
