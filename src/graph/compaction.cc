#include "graph/compaction.hh"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace hector::graph
{

CompactionMap::CompactionMap(const HeteroGraph &g)
    : numEdges_(g.numEdges())
{
    const auto src = g.src();
    const auto etype_ptr = g.etypePtr();
    const int r_count = g.numEdgeTypes();

    edgeToUnique_.resize(static_cast<std::size_t>(numEdges_));
    uniqueEtypePtr_.assign(static_cast<std::size_t>(r_count) + 1, 0);

    // Edges are presorted by etype, so unique pairs can be assigned
    // per segment; unique rows inherit the segment order, giving the
    // CSR-like layout of Fig. 7(b).
    for (int r = 0; r < r_count; ++r) {
        std::unordered_map<std::int64_t, std::int64_t> seen;
        for (std::int64_t e = etype_ptr[static_cast<std::size_t>(r)];
             e < etype_ptr[static_cast<std::size_t>(r) + 1]; ++e) {
            const std::int64_t s = src[static_cast<std::size_t>(e)];
            auto [it, inserted] = seen.try_emplace(s, numUnique_);
            if (inserted) {
                uniqueSrc_.push_back(s);
                ++numUnique_;
            }
            edgeToUnique_[static_cast<std::size_t>(e)] = it->second;
        }
        uniqueEtypePtr_[static_cast<std::size_t>(r) + 1] = numUnique_;
    }
}

void
CompactionMap::validate(const HeteroGraph &g) const
{
    if (g.numEdges() != numEdges_)
        throw std::runtime_error("CompactionMap: edge count mismatch");
    const auto src = g.src();
    const auto etype = g.etype();
    for (std::int64_t e = 0; e < numEdges_; ++e) {
        const std::int64_t u = edgeToUnique_[static_cast<std::size_t>(e)];
        if (u < 0 || u >= numUnique_)
            throw std::runtime_error("CompactionMap: unique id range");
        if (uniqueSrc_[static_cast<std::size_t>(u)] !=
            src[static_cast<std::size_t>(e)])
            throw std::runtime_error("CompactionMap: src mismatch");
        const std::int32_t r = etype[static_cast<std::size_t>(e)];
        if (u < uniqueEtypePtr_[static_cast<std::size_t>(r)] ||
            u >= uniqueEtypePtr_[static_cast<std::size_t>(r) + 1])
            throw std::runtime_error("CompactionMap: etype segment");
    }
    // Bijectivity: within an etype segment, unique rows map to
    // distinct source nodes.
    for (int r = 0; r < g.numEdgeTypes(); ++r) {
        std::vector<std::int64_t> seg(
            uniqueSrc_.begin() + uniqueEtypePtr_[static_cast<std::size_t>(r)],
            uniqueSrc_.begin() +
                uniqueEtypePtr_[static_cast<std::size_t>(r) + 1]);
        std::sort(seg.begin(), seg.end());
        if (std::adjacent_find(seg.begin(), seg.end()) != seg.end())
            throw std::runtime_error("CompactionMap: duplicate unique pair");
    }
}

} // namespace hector::graph
