#include "graph/datasets.hh"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace hector::graph
{

std::vector<DatasetSpec>
table3Specs()
{
    // Full-size statistics from Table 3 (counts after the default DGL
    // / OGB preprocessing). Compaction targets: am and fb15k are the
    // paper's reported 57% / 26%; the rest are chosen to be consistent
    // with the paper's Table 5 speedups and Fig. 10 memory ratios
    // (high-average-degree knowledge graphs compact well, sparse typed
    // graphs compact little).
    return {
        {"aifb", 7300, 7, 49000, 104, 0.58, 1.0},
        {"am", 1900000, 7, 5700000, 108, 0.57, 1.0},
        {"bgs", 95000, 27, 673000, 122, 0.52, 1.0},
        {"biokg", 94000, 5, 4800000, 51, 0.12, 0.6},
        {"fb15k", 15000, 1, 620000, 474, 0.26, 0.9},
        {"mag", 1900000, 4, 21000000, 4, 0.12, 0.3},
        {"mutag", 27000, 5, 148000, 50, 0.62, 1.0},
        {"wikikg2", 2500000, 1, 16000000, 535, 0.75, 1.1},
    };
}

DatasetSpec
datasetSpec(const std::string &name)
{
    for (const auto &s : table3Specs())
        if (s.name == name)
            return s;
    throw std::runtime_error("unknown dataset: " + name);
}

namespace
{

/**
 * Solve p * (1 - exp(-m/p)) == target * m for the source-pool size p:
 * sampling m edges uniformly from a pool of p sources yields roughly
 * target*m distinct (source, relation) pairs.
 */
std::int64_t
poolSizeForRatio(std::int64_t m, double target)
{
    if (m <= 1 || target >= 0.999)
        return std::max<std::int64_t>(1, m * 50);
    const double want = target * static_cast<double>(m);
    double lo = 1.0;
    double hi = static_cast<double>(m) * 50.0;
    for (int it = 0; it < 60; ++it) {
        const double p = 0.5 * (lo + hi);
        const double uniq = p * (1.0 - std::exp(-static_cast<double>(m) / p));
        if (uniq < want)
            lo = p;
        else
            hi = p;
    }
    return std::max<std::int64_t>(1, static_cast<std::int64_t>(lo));
}

/** Zipf-like weights w_i = (i+1)^-skew, normalized to sum @p total. */
std::vector<std::int64_t>
zipfPartition(std::int64_t total, int parts, double skew,
              std::int64_t min_each)
{
    std::vector<double> w(static_cast<std::size_t>(parts));
    double sum = 0.0;
    for (int i = 0; i < parts; ++i) {
        w[static_cast<std::size_t>(i)] = std::pow(i + 1.0, -skew);
        sum += w[static_cast<std::size_t>(i)];
    }
    std::vector<std::int64_t> out(static_cast<std::size_t>(parts));
    std::int64_t assigned = 0;
    for (int i = 0; i < parts; ++i) {
        std::int64_t c = static_cast<std::int64_t>(
            w[static_cast<std::size_t>(i)] / sum *
            static_cast<double>(total));
        c = std::max(min_each, c);
        out[static_cast<std::size_t>(i)] = c;
        assigned += c;
    }
    // Adjust the largest part so the total matches exactly.
    out[0] += total - assigned;
    if (out[0] < min_each)
        out[0] = min_each;
    return out;
}

} // namespace

HeteroGraph
generate(const DatasetSpec &spec, double scale, std::uint64_t seed)
{
    std::mt19937_64 rng(seed ^ std::hash<std::string>{}(spec.name));

    const int ntypes = spec.numNodeTypes;
    int etypes = spec.numEdgeTypes;
    std::int64_t n = std::max<std::int64_t>(
        4 * ntypes,
        static_cast<std::int64_t>(
            static_cast<double>(spec.numNodes) * scale));
    std::int64_t m = std::max<std::int64_t>(
        4 * etypes,
        static_cast<std::int64_t>(
            static_cast<double>(spec.numEdges) * scale));

    // Node type segments (skewed sizes, nodes presorted by type).
    const auto ntype_sizes = zipfPartition(n, ntypes, 0.8, 2);
    n = 0;
    for (auto c : ntype_sizes)
        n += c;
    std::vector<std::int32_t> node_type(static_cast<std::size_t>(n));
    std::vector<std::int64_t> ntype_lo(static_cast<std::size_t>(ntypes));
    {
        std::int64_t v = 0;
        for (int t = 0; t < ntypes; ++t) {
            ntype_lo[static_cast<std::size_t>(t)] = v;
            for (std::int64_t i = 0; i < ntype_sizes[static_cast<std::size_t>(
                     t)]; ++i)
                node_type[static_cast<std::size_t>(v++)] =
                    static_cast<std::int32_t>(t);
        }
    }

    // Relation metadata and sizes. Source/destination node types are
    // sampled proportionally to segment size (real heterogeneous
    // graphs source most relations from the dominant entity types),
    // which keeps per-relation source pools large enough to realize
    // the target compaction ratio after downscaling.
    std::vector<std::int32_t> src_nt(static_cast<std::size_t>(etypes));
    std::vector<std::int32_t> dst_nt(static_cast<std::size_t>(etypes));
    std::vector<double> nt_weights;
    nt_weights.reserve(ntype_sizes.size());
    for (auto c : ntype_sizes)
        nt_weights.push_back(static_cast<double>(c));
    std::discrete_distribution<int> nt_dist(nt_weights.begin(),
                                            nt_weights.end());
    for (int r = 0; r < etypes; ++r) {
        src_nt[static_cast<std::size_t>(r)] =
            static_cast<std::int32_t>(nt_dist(rng));
        dst_nt[static_cast<std::size_t>(r)] =
            static_cast<std::int32_t>(nt_dist(rng));
    }
    const auto etype_sizes = zipfPartition(m, etypes, spec.etypeSkew, 1);

    std::vector<EdgeTriple> edges;
    edges.reserve(static_cast<std::size_t>(m));

    for (int r = 0; r < etypes; ++r) {
        const std::int64_t mr = etype_sizes[static_cast<std::size_t>(r)];
        const std::int32_t snt = src_nt[static_cast<std::size_t>(r)];
        const std::int32_t dnt = dst_nt[static_cast<std::size_t>(r)];
        const std::int64_t s_lo = ntype_lo[static_cast<std::size_t>(snt)];
        const std::int64_t s_cnt = ntype_sizes[static_cast<std::size_t>(snt)];
        const std::int64_t d_lo = ntype_lo[static_cast<std::size_t>(dnt)];
        const std::int64_t d_cnt = ntype_sizes[static_cast<std::size_t>(dnt)];

        // Source pool sized to hit the target compaction ratio.
        std::int64_t pool = std::min(
            s_cnt, poolSizeForRatio(mr, spec.compactionTarget));
        std::vector<std::int64_t> pool_nodes;
        if (pool >= s_cnt) {
            pool_nodes.resize(static_cast<std::size_t>(s_cnt));
            for (std::int64_t i = 0; i < s_cnt; ++i)
                pool_nodes[static_cast<std::size_t>(i)] = s_lo + i;
        } else {
            std::unordered_set<std::int64_t> picked;
            std::uniform_int_distribution<std::int64_t> pick(0, s_cnt - 1);
            while (static_cast<std::int64_t>(picked.size()) < pool)
                picked.insert(s_lo + pick(rng));
            pool_nodes.assign(picked.begin(), picked.end());
        }

        std::uniform_int_distribution<std::size_t> src_pick(
            0, pool_nodes.size() - 1);
        // Destination hubs: squared-uniform skew toward low indices.
        std::uniform_real_distribution<double> u01(0.0, 1.0);
        for (std::int64_t i = 0; i < mr; ++i) {
            const std::int64_t s = pool_nodes[src_pick(rng)];
            const double u = u01(rng);
            const std::int64_t d =
                d_lo + std::min<std::int64_t>(
                           d_cnt - 1,
                           static_cast<std::int64_t>(
                               u * u * static_cast<double>(d_cnt)));
            edges.push_back({s, d, static_cast<std::int32_t>(r)});
        }
    }

    return HeteroGraph(std::move(node_type), ntypes, etypes,
                       std::move(src_nt), std::move(dst_nt),
                       std::move(edges));
}

HeteroGraph
toyCitationGraph()
{
    // Fig. 6(a)-like toy: 1 institution, 2 authors, 4 papers;
    // relations employs (inst->author), writes (author->paper),
    // cites (paper->paper).
    std::vector<std::int32_t> node_type = {0, 1, 1, 2, 2, 2, 2};
    std::vector<std::int32_t> src_nt = {0, 1, 2};
    std::vector<std::int32_t> dst_nt = {1, 2, 2};
    std::vector<EdgeTriple> edges = {
        {0, 1, 0}, {0, 2, 0},            // employs
        {1, 3, 1}, {1, 4, 1}, {2, 4, 1}, // writes
        {4, 3, 2}, {5, 3, 2}, {5, 4, 2}, {6, 4, 2}, // cites
    };
    return HeteroGraph(std::move(node_type), 3, 3, std::move(src_nt),
                       std::move(dst_nt), std::move(edges));
}

} // namespace hector::graph
