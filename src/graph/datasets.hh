/**
 * @file
 * Synthetic stand-ins for the paper's Table 3 datasets.
 *
 * The real evaluation uses eight heterogeneous graphs shipped with DGL
 * and OGB. Those downloads are unavailable offline, so each dataset is
 * replaced by a generator matched to the statistics that drive every
 * evaluated effect: node/edge counts (scaled), node/edge type counts,
 * a skewed relation-size distribution, skewed destination degrees, and
 * a target entity compaction ratio (the paper reports 57% for am and
 * 26% for fb15k; others are set to plausible values consistent with
 * the Table 5 / Fig. 10 trends and documented per spec).
 */

#ifndef HECTOR_GRAPH_DATASETS_HH
#define HECTOR_GRAPH_DATASETS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "graph/hetero_graph.hh"

namespace hector::graph
{

/** Statistics one synthetic dataset is generated to match. */
struct DatasetSpec
{
    std::string name;
    std::int64_t numNodes;
    int numNodeTypes;
    std::int64_t numEdges;
    int numEdgeTypes;
    /**
     * Target entity compaction ratio (#unique (src,etype) / #edges).
     * Sources per relation are drawn from a pool sized so the
     * expected ratio matches this target.
     */
    double compactionTarget;
    /** Zipf skew of the relation-size distribution. */
    double etypeSkew = 1.0;
};

/** The eight Table 3 datasets, full-size statistics. */
std::vector<DatasetSpec> table3Specs();

/** Look up one Table 3 spec by name; throws on unknown name. */
DatasetSpec datasetSpec(const std::string &name);

/**
 * Generate a synthetic heterogeneous graph matching @p spec.
 *
 * @param spec  full-size statistics
 * @param scale node and edge counts are multiplied by this factor
 *              (clamped to keep at least ~4 edges per edge type so
 *              type-richness survives downscaling)
 * @param seed  RNG seed; generation is fully deterministic
 */
HeteroGraph generate(const DatasetSpec &spec, double scale,
                     std::uint64_t seed = 0x5eed);

/** Small fixed graph used by unit tests and the quickstart example. */
HeteroGraph toyCitationGraph();

} // namespace hector::graph

#endif // HECTOR_GRAPH_DATASETS_HH
