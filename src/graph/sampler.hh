/**
 * @file
 * Neighbor sampling for minibatch RGNN training (paper Sec. 6).
 *
 * Graphs that do not fit on the device stay in host memory; each
 * training step samples a seed set, extracts the one-hop typed
 * neighborhood with a per-edge-type fanout cap, and transfers the
 * subgraph plus the features it needs to the device. This module
 * implements the sampler and the transfer-cost accounting so the
 * minibatch example/benchmarks can model the paper's proposed
 * host-to-device data-movement optimization point.
 */

#ifndef HECTOR_GRAPH_SAMPLER_HH
#define HECTOR_GRAPH_SAMPLER_HH

#include <cstdint>
#include <random>
#include <vector>

#include "graph/hetero_graph.hh"
#include "sim/runtime.hh"
#include "tensor/tensor.hh"

namespace hector::graph
{

/** Sampling parameters for one minibatch. */
struct SampleSpec
{
    /** Number of destination seed nodes. */
    std::int64_t numSeeds = 64;
    /** Max incoming edges kept per (seed, edge type). */
    std::int64_t fanout = 8;
};

/** A sampled subgraph with its mapping back to the full graph. */
struct Minibatch
{
    HeteroGraph subgraph;
    /** Original node id of each subgraph node. */
    std::vector<std::int64_t> nodeMap;
    /** Subgraph node ids of the seeds. */
    std::vector<std::int64_t> seedLocalIds;

    Minibatch(HeteroGraph g, std::vector<std::int64_t> node_map,
              std::vector<std::int64_t> seeds)
        : subgraph(std::move(g)), nodeMap(std::move(node_map)),
          seedLocalIds(std::move(seeds))
    {}
};

/**
 * Sample a one-hop typed neighborhood minibatch.
 *
 * Seeds are drawn uniformly from nodes with at least one incoming
 * edge; for each seed and edge type, at most spec.fanout incoming
 * edges are kept (uniform without replacement). The subgraph's nodes
 * are renumbered, keeping the sorted-by-node-type invariant.
 */
Minibatch sampleNeighbors(const HeteroGraph &g, const SampleSpec &spec,
                          std::mt19937_64 &rng);

/**
 * Gather the features of a minibatch's nodes from the host-resident
 * full feature tensor and charge the simulated device for the
 * host-to-device transfer (PCIe-like bandwidth).
 *
 * @return device-side feature tensor [subgraph nodes, dim]
 */
tensor::Tensor transferFeatures(const Minibatch &mb,
                                const tensor::Tensor &host_features,
                                sim::Runtime &rt);

/**
 * The gather of transferFeatures without the transfer charge, for
 * callers that model the data movement themselves (the sharded
 * serving path keeps feature rows device-resident and only moves the
 * subgraph structure over PCIe, halo rows over the interconnect).
 */
tensor::Tensor gatherFeatures(const Minibatch &mb,
                              const tensor::Tensor &host_features);

/**
 * Modeled host-to-device time of moving @p bytes over the PCIe-like
 * link (~25 GB/s effective) plus one DMA setup, scaled like every
 * other host overhead by @p spec.overheadScale.
 */
double hostTransferSec(double bytes, const sim::DeviceSpec &spec);

} // namespace hector::graph

#endif // HECTOR_GRAPH_SAMPLER_HH
