#include "graph/partition.hh"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <unordered_set>

namespace hector::graph
{

namespace
{

/**
 * Seeded Fisher-Yates over @p v using the raw mt19937_64 stream (no
 * std::shuffle / std::uniform_int_distribution, whose outputs differ
 * across standard libraries). Modulo bias is irrelevant here: the
 * order only has to be *some* fixed pseudo-random order.
 */
void
shuffleStable(std::vector<std::int64_t> &v, std::mt19937_64 &rng)
{
    for (std::size_t i = v.size(); i > 1; --i)
        std::swap(v[i - 1], v[rng() % i]);
}

} // namespace

Partition
partitionGraph(const HeteroGraph &g, const PartitionSpec &spec)
{
    if (spec.numShards < 1)
        throw std::runtime_error("partitionGraph: need >= 1 shard");
    if (spec.balanceTolerance < 0.0)
        throw std::runtime_error(
            "partitionGraph: negative balance tolerance");

    const std::size_t n = static_cast<std::size_t>(g.numNodes());
    const std::size_t k = static_cast<std::size_t>(spec.numShards);

    Partition p;
    p.numShards = spec.numShards;
    p.totalEdges = g.numEdges();
    p.shardOf.assign(n, -1);
    p.shardSizes.assign(k, 0);
    p.sizesByType.assign(static_cast<std::size_t>(g.numNodeTypes()),
                         std::vector<std::int64_t>(k, 0));

    if (spec.numShards == 1) {
        std::fill(p.shardOf.begin(), p.shardOf.end(), 0);
        p.shardSizes[0] = g.numNodes();
        for (int t = 0; t < g.numNodeTypes(); ++t)
            p.sizesByType[static_cast<std::size_t>(t)][0] =
                g.ntypePtr()[static_cast<std::size_t>(t) + 1] -
                g.ntypePtr()[static_cast<std::size_t>(t)];
        p.cutEdges = 0;
        return p;
    }

    // Undirected adjacency (CSR) over both edge directions: the greedy
    // score counts every already placed neighbor regardless of the
    // edge's orientation, since either direction becomes a halo row
    // when cut.
    std::vector<std::int64_t> deg(n, 0);
    const auto src = g.src();
    const auto dst = g.dst();
    for (std::int64_t e = 0; e < g.numEdges(); ++e) {
        ++deg[static_cast<std::size_t>(src[static_cast<std::size_t>(e)])];
        ++deg[static_cast<std::size_t>(dst[static_cast<std::size_t>(e)])];
    }
    std::vector<std::int64_t> adj_ptr(n + 1, 0);
    for (std::size_t v = 0; v < n; ++v)
        adj_ptr[v + 1] = adj_ptr[v] + deg[v];
    std::vector<std::int64_t> adj(
        static_cast<std::size_t>(adj_ptr[n]));
    std::vector<std::int64_t> fill = adj_ptr;
    for (std::int64_t e = 0; e < g.numEdges(); ++e) {
        const std::int64_t u = src[static_cast<std::size_t>(e)];
        const std::int64_t v = dst[static_cast<std::size_t>(e)];
        adj[static_cast<std::size_t>(fill[static_cast<std::size_t>(u)]++)] =
            v;
        adj[static_cast<std::size_t>(fill[static_cast<std::size_t>(v)]++)] =
            u;
    }

    // LDG scoring needs a fractional fill discount; to stay bit-stable
    // we compare integer cross-products instead of floating scores:
    //   score(s) = placed_neighbors(s) * (cap_t - load_t(s))
    // which orders shards exactly like the textbook
    // placed * (1 - load/cap) for a fixed type capacity cap_t.
    std::vector<std::int64_t> placed_in(k, 0);

    std::mt19937_64 rng(spec.seed);
    for (int t = 0; t < g.numNodeTypes(); ++t) {
        const std::int64_t lo = g.ntypePtr()[static_cast<std::size_t>(t)];
        const std::int64_t hi =
            g.ntypePtr()[static_cast<std::size_t>(t) + 1];
        const std::int64_t count = hi - lo;
        if (count == 0)
            continue;
        // Even-split need, inflated by the tolerance but never below
        // the ceiling an even split requires (feasibility).
        const std::int64_t even =
            (count + spec.numShards - 1) / spec.numShards;
        const std::int64_t cap = std::max(
            even, static_cast<std::int64_t>(
                      static_cast<double>(count) /
                      static_cast<double>(spec.numShards) *
                      (1.0 + spec.balanceTolerance)));

        std::vector<std::int64_t> order;
        order.reserve(static_cast<std::size_t>(count));
        for (std::int64_t v = lo; v < hi; ++v)
            order.push_back(v);
        shuffleStable(order, rng);

        auto &type_load = p.sizesByType[static_cast<std::size_t>(t)];
        for (std::int64_t v : order) {
            // Count already placed neighbors per shard.
            std::fill(placed_in.begin(), placed_in.end(), 0);
            for (std::int64_t i = adj_ptr[static_cast<std::size_t>(v)];
                 i < adj_ptr[static_cast<std::size_t>(v) + 1]; ++i) {
                const std::int32_t s =
                    p.shardOf[static_cast<std::size_t>(
                        adj[static_cast<std::size_t>(i)])];
                if (s >= 0)
                    ++placed_in[static_cast<std::size_t>(s)];
            }
            int best = -1;
            std::int64_t best_score = -1;
            for (std::size_t s = 0; s < k; ++s) {
                const std::int64_t headroom = cap - type_load[s];
                if (headroom <= 0)
                    continue; // shard full for this type
                const std::int64_t score = placed_in[s] * headroom;
                // Ties (including the all-zero cold start) go to the
                // emptier shard, then the lower id — both deterministic.
                if (score > best_score ||
                    (score == best_score && best >= 0 &&
                     type_load[s] <
                         type_load[static_cast<std::size_t>(best)])) {
                    best = static_cast<int>(s);
                    best_score = score;
                }
            }
            if (best < 0)
                throw std::runtime_error(
                    "partitionGraph: no shard has headroom (internal)");
            p.shardOf[static_cast<std::size_t>(v)] =
                static_cast<std::int32_t>(best);
            ++type_load[static_cast<std::size_t>(best)];
            ++p.shardSizes[static_cast<std::size_t>(best)];
        }
    }

    p.cutEdges = countCutEdges(g, p.shardOf);
    return p;
}

std::int64_t
countCutEdges(const HeteroGraph &g,
              const std::vector<std::int32_t> &shard_of)
{
    if (shard_of.size() != static_cast<std::size_t>(g.numNodes()))
        throw std::runtime_error("countCutEdges: shardOf size mismatch");
    std::int64_t cut = 0;
    const auto src = g.src();
    const auto dst = g.dst();
    for (std::int64_t e = 0; e < g.numEdges(); ++e)
        if (shard_of[static_cast<std::size_t>(
                src[static_cast<std::size_t>(e)])] !=
            shard_of[static_cast<std::size_t>(
                dst[static_cast<std::size_t>(e)])])
            ++cut;
    return cut;
}

std::vector<std::int64_t>
haloMatrix(const HeteroGraph &g, const Partition &p)
{
    const std::size_t k = static_cast<std::size_t>(p.numShards);
    std::vector<std::int64_t> halo(k * k, 0);
    // Unique (source vertex, destination shard) pairs over cut edges.
    std::unordered_set<std::uint64_t> seen;
    const auto src = g.src();
    const auto dst = g.dst();
    for (std::int64_t e = 0; e < g.numEdges(); ++e) {
        const std::int64_t u = src[static_cast<std::size_t>(e)];
        const std::int32_t su = p.shardOf[static_cast<std::size_t>(u)];
        const std::int32_t sv = p.shardOf[static_cast<std::size_t>(
            dst[static_cast<std::size_t>(e)])];
        if (su == sv)
            continue;
        const std::uint64_t key =
            static_cast<std::uint64_t>(u) * k +
            static_cast<std::uint64_t>(sv);
        if (seen.insert(key).second)
            ++halo[static_cast<std::size_t>(su) * k +
                   static_cast<std::size_t>(sv)];
    }
    return halo;
}

} // namespace hector::graph
