#include "graph/hetero_graph.hh"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <string>

namespace hector::graph
{

namespace
{
void
graphCheck(bool cond, const char *msg)
{
    // Takes a literal so the happy path allocates nothing: these
    // checks run per edge/node in the constructor, which the serving
    // micro-batcher hits once per coalesced batch.
    if (!cond)
        throw std::runtime_error(std::string("HeteroGraph: ") + msg);
}
} // namespace

HeteroGraph::HeteroGraph(std::vector<std::int32_t> node_type, int num_ntypes,
                         int num_etypes,
                         std::vector<std::int32_t> etype_src_nt,
                         std::vector<std::int32_t> etype_dst_nt,
                         std::vector<EdgeTriple> edges)
    : numNodes_(static_cast<std::int64_t>(node_type.size())),
      numEdges_(static_cast<std::int64_t>(edges.size())),
      numNodeTypes_(num_ntypes), numEdgeTypes_(num_etypes),
      nodeType_(std::move(node_type)), etypeSrcNt_(std::move(etype_src_nt)),
      etypeDstNt_(std::move(etype_dst_nt))
{
    graphCheck(static_cast<int>(etypeSrcNt_.size()) == num_etypes &&
                   static_cast<int>(etypeDstNt_.size()) == num_etypes,
               "relation metadata size mismatch");

    // Node type segments (nodes must be presorted by type).
    ntypePtr_.assign(static_cast<std::size_t>(numNodeTypes_) + 1, 0);
    for (std::int64_t v = 0; v < numNodes_; ++v) {
        const std::int32_t t = nodeType_[static_cast<std::size_t>(v)];
        graphCheck(t >= 0 && t < numNodeTypes_, "node type out of range");
        if (v > 0)
            graphCheck(nodeType_[static_cast<std::size_t>(v - 1)] <= t,
                       "nodes not sorted by type");
        ++ntypePtr_[static_cast<std::size_t>(t) + 1];
    }
    for (int t = 0; t < numNodeTypes_; ++t)
        ntypePtr_[static_cast<std::size_t>(t) + 1] +=
            ntypePtr_[static_cast<std::size_t>(t)];

    // Sort edges by (etype, dst, src) so segments are contiguous and
    // per-type runs are deterministic.
    std::stable_sort(edges.begin(), edges.end(),
                     [](const EdgeTriple &a, const EdgeTriple &b) {
                         if (a.etype != b.etype)
                             return a.etype < b.etype;
                         if (a.dst != b.dst)
                             return a.dst < b.dst;
                         return a.src < b.src;
                     });

    src_.resize(static_cast<std::size_t>(numEdges_));
    dst_.resize(static_cast<std::size_t>(numEdges_));
    etype_.resize(static_cast<std::size_t>(numEdges_));
    etypePtr_.assign(static_cast<std::size_t>(numEdgeTypes_) + 1, 0);
    for (std::size_t e = 0; e < edges.size(); ++e) {
        const EdgeTriple &t = edges[e];
        graphCheck(t.etype >= 0 && t.etype < numEdgeTypes_,
                   "edge type out of range");
        graphCheck(t.src >= 0 && t.src < numNodes_, "src out of range");
        graphCheck(t.dst >= 0 && t.dst < numNodes_, "dst out of range");
        src_[e] = t.src;
        dst_[e] = t.dst;
        etype_[e] = t.etype;
        ++etypePtr_[static_cast<std::size_t>(t.etype) + 1];
    }
    for (int r = 0; r < numEdgeTypes_; ++r)
        etypePtr_[static_cast<std::size_t>(r) + 1] +=
            etypePtr_[static_cast<std::size_t>(r)];

    // CSR by destination.
    inPtr_.assign(static_cast<std::size_t>(numNodes_) + 1, 0);
    for (std::size_t e = 0; e < src_.size(); ++e)
        ++inPtr_[static_cast<std::size_t>(dst_[e]) + 1];
    for (std::int64_t v = 0; v < numNodes_; ++v)
        inPtr_[static_cast<std::size_t>(v) + 1] +=
            inPtr_[static_cast<std::size_t>(v)];
    inEdgeIds_.resize(static_cast<std::size_t>(numEdges_));
    {
        std::vector<std::int64_t> cursor(inPtr_.begin(), inPtr_.end() - 1);
        for (std::int64_t e = 0; e < numEdges_; ++e) {
            auto &c = cursor[static_cast<std::size_t>(
                dst_[static_cast<std::size_t>(e)])];
            inEdgeIds_[static_cast<std::size_t>(c++)] = e;
        }
    }

    // RGCN normalization: 1 / |N_r(dst)| per edge.
    rgcnNorm_.resize(static_cast<std::size_t>(numEdges_), 1.0f);
    {
        std::map<std::pair<std::int64_t, std::int32_t>, std::int64_t> count;
        for (std::size_t e = 0; e < src_.size(); ++e)
            ++count[{dst_[e], etype_[e]}];
        for (std::size_t e = 0; e < src_.size(); ++e)
            rgcnNorm_[e] =
                1.0f / static_cast<float>(count[{dst_[e], etype_[e]}]);
    }
}

double
HeteroGraph::avgNonzeroInDegree() const
{
    std::int64_t nonzero = 0;
    for (std::int64_t v = 0; v < numNodes_; ++v)
        if (inDegree(v) > 0)
            ++nonzero;
    return nonzero ? static_cast<double>(numEdges_) / nonzero : 0.0;
}

std::size_t
HeteroGraph::structureBytes() const
{
    return src_.size() * sizeof(std::int64_t) +
           dst_.size() * sizeof(std::int64_t) +
           etype_.size() * sizeof(std::int32_t) +
           etypePtr_.size() * sizeof(std::int64_t) +
           inPtr_.size() * sizeof(std::int64_t) +
           inEdgeIds_.size() * sizeof(std::int64_t) +
           nodeType_.size() * sizeof(std::int32_t) +
           rgcnNorm_.size() * sizeof(float);
}

std::string
HeteroGraph::schemaSignature() const
{
    std::string s = "nt=" + std::to_string(numNodeTypes_) +
                    ";et=" + std::to_string(numEdgeTypes_) + ";rel=";
    for (int r = 0; r < numEdgeTypes_; ++r) {
        s += std::to_string(etypeSrcNt_[static_cast<std::size_t>(r)]);
        s += "->";
        s += std::to_string(etypeDstNt_[static_cast<std::size_t>(r)]);
        s += ',';
    }
    return s;
}

bool
HeteroGraph::sameSchema(const HeteroGraph &o) const
{
    return numNodeTypes_ == o.numNodeTypes_ &&
           numEdgeTypes_ == o.numEdgeTypes_ &&
           etypeSrcNt_ == o.etypeSrcNt_ && etypeDstNt_ == o.etypeDstNt_;
}

void
HeteroGraph::validate() const
{
    graphCheck(etypePtr_.front() == 0 && etypePtr_.back() == numEdges_,
               "etypePtr does not cover edges");
    for (int r = 0; r < numEdgeTypes_; ++r) {
        graphCheck(etypePtr_[static_cast<std::size_t>(r)] <=
                       etypePtr_[static_cast<std::size_t>(r) + 1],
                   "etypePtr not monotone");
        for (std::int64_t e = etypePtr_[static_cast<std::size_t>(r)];
             e < etypePtr_[static_cast<std::size_t>(r) + 1]; ++e) {
            graphCheck(etype_[static_cast<std::size_t>(e)] == r,
                       "edge in wrong segment");
            const std::int64_t s = src_[static_cast<std::size_t>(e)];
            const std::int64_t d = dst_[static_cast<std::size_t>(e)];
            graphCheck(nodeType_[static_cast<std::size_t>(s)] ==
                           etypeSrcNt_[static_cast<std::size_t>(r)],
                       "edge src violates relation source type");
            graphCheck(nodeType_[static_cast<std::size_t>(d)] ==
                           etypeDstNt_[static_cast<std::size_t>(r)],
                       "edge dst violates relation destination type");
        }
    }
    graphCheck(inPtr_.front() == 0 && inPtr_.back() == numEdges_,
               "inPtr does not cover edges");
    for (std::int64_t v = 0; v < numNodes_; ++v) {
        for (std::int64_t i = inPtr_[static_cast<std::size_t>(v)];
             i < inPtr_[static_cast<std::size_t>(v) + 1]; ++i) {
            const std::int64_t e = inEdgeIds_[static_cast<std::size_t>(i)];
            graphCheck(dst_[static_cast<std::size_t>(e)] == v,
                       "CSR row lists edge with wrong destination");
        }
    }
}

} // namespace hector::graph
