/**
 * @file
 * Compact materialization mapping (paper Sec. 3.2.2, Fig. 7).
 *
 * Edgewise data that depends only on (source node, edge type) can be
 * computed and stored once per *unique* such pair rather than once per
 * edge. This mapping precomputes, in the paper's CSR-like form:
 *   - unique_row_idx  : source node of each unique row (GEMM gather)
 *   - unique_etype_ptr: per-type segment offsets over unique rows
 *   - edge_to_unique  : per-edge index of its unique row (read access)
 * The "entity compaction ratio" (#unique pairs / #edges) drives the
 * memory-footprint results of Fig. 10 and the speedups of Table 5.
 */

#ifndef HECTOR_GRAPH_COMPACTION_HH
#define HECTOR_GRAPH_COMPACTION_HH

#include <cstdint>
#include <span>
#include <vector>

#include "graph/hetero_graph.hh"

namespace hector::graph
{

/** Unique (source node, edge type) materialization map. */
class CompactionMap
{
  public:
    /** Builds the map for @p g; O(|E| log |E|). */
    explicit CompactionMap(const HeteroGraph &g);

    /** Number of unique (source node, edge type) pairs. */
    std::int64_t numUnique() const { return numUnique_; }

    std::int64_t numEdges() const { return numEdges_; }

    /** Entity compaction ratio = numUnique / numEdges, in (0, 1]. */
    double
    ratio() const
    {
        return numEdges_ ? static_cast<double>(numUnique_) / numEdges_ : 1.0;
    }

    /** Source node per unique row (the paper's unique_row_idx). */
    std::span<const std::int64_t> uniqueRowIdx() const { return uniqueSrc_; }

    /** Per-type offsets over unique rows (unique_etype_ptr), R+1. */
    std::span<const std::int64_t>
    uniqueEtypePtr() const
    {
        return uniqueEtypePtr_;
    }

    /** Unique row index for each edge. */
    std::span<const std::int64_t>
    edgeToUnique() const
    {
        return edgeToUnique_;
    }

    /** @throws std::runtime_error if the map is inconsistent with g. */
    void validate(const HeteroGraph &g) const;

  private:
    std::int64_t numUnique_ = 0;
    std::int64_t numEdges_ = 0;
    std::vector<std::int64_t> uniqueSrc_;
    std::vector<std::int64_t> uniqueEtypePtr_;
    std::vector<std::int64_t> edgeToUnique_;
};

} // namespace hector::graph

#endif // HECTOR_GRAPH_COMPACTION_HH
