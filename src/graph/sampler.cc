#include "graph/sampler.hh"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace hector::graph
{

Minibatch
sampleNeighbors(const HeteroGraph &g, const SampleSpec &spec,
                std::mt19937_64 &rng)
{
    // Seed candidates: nodes with incoming edges.
    std::vector<std::int64_t> candidates;
    for (std::int64_t v = 0; v < g.numNodes(); ++v)
        if (g.inDegree(v) > 0)
            candidates.push_back(v);
    std::shuffle(candidates.begin(), candidates.end(), rng);
    const std::int64_t n_seeds = std::min<std::int64_t>(
        spec.numSeeds, static_cast<std::int64_t>(candidates.size()));
    std::vector<std::int64_t> seeds(candidates.begin(),
                                    candidates.begin() + n_seeds);

    // Keep at most `fanout` incoming edges per (seed, etype).
    std::vector<std::int64_t> kept_edges;
    for (std::int64_t s : seeds) {
        // Group this seed's in-edges by type (they are not sorted by
        // type within the CSR row).
        std::map<std::int32_t, std::vector<std::int64_t>> by_type;
        for (std::int64_t i = g.inPtr()[static_cast<std::size_t>(s)];
             i < g.inPtr()[static_cast<std::size_t>(s) + 1]; ++i) {
            const std::int64_t e =
                g.inEdgeIds()[static_cast<std::size_t>(i)];
            by_type[g.etype()[static_cast<std::size_t>(e)]].push_back(e);
        }
        for (auto &[etype, edges] : by_type) {
            std::shuffle(edges.begin(), edges.end(), rng);
            const std::size_t keep = std::min<std::size_t>(
                static_cast<std::size_t>(spec.fanout), edges.size());
            kept_edges.insert(kept_edges.end(), edges.begin(),
                              edges.begin() + static_cast<long>(keep));
        }
    }

    // Collect subgraph nodes: endpoints of kept edges plus seeds,
    // sorted by (node type, id) to keep the type-segment invariant.
    std::vector<std::int64_t> nodes = seeds;
    for (std::int64_t e : kept_edges) {
        nodes.push_back(g.src()[static_cast<std::size_t>(e)]);
        nodes.push_back(g.dst()[static_cast<std::size_t>(e)]);
    }
    std::sort(nodes.begin(), nodes.end(), [&](std::int64_t a,
                                              std::int64_t b) {
        const auto ta = g.nodeType()[static_cast<std::size_t>(a)];
        const auto tb = g.nodeType()[static_cast<std::size_t>(b)];
        return ta != tb ? ta < tb : a < b;
    });
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

    std::unordered_map<std::int64_t, std::int64_t> remap;
    std::vector<std::int32_t> node_type;
    node_type.reserve(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        remap[nodes[i]] = static_cast<std::int64_t>(i);
        node_type.push_back(
            g.nodeType()[static_cast<std::size_t>(nodes[i])]);
    }

    std::vector<EdgeTriple> edges;
    edges.reserve(kept_edges.size());
    for (std::int64_t e : kept_edges) {
        edges.push_back(
            {remap.at(g.src()[static_cast<std::size_t>(e)]),
             remap.at(g.dst()[static_cast<std::size_t>(e)]),
             g.etype()[static_cast<std::size_t>(e)]});
    }

    std::vector<std::int32_t> src_nt;
    std::vector<std::int32_t> dst_nt;
    for (int r = 0; r < g.numEdgeTypes(); ++r) {
        src_nt.push_back(g.etypeSrcNtype(r));
        dst_nt.push_back(g.etypeDstNtype(r));
    }

    HeteroGraph sub(std::move(node_type), g.numNodeTypes(),
                    g.numEdgeTypes(), std::move(src_nt), std::move(dst_nt),
                    std::move(edges));

    std::vector<std::int64_t> seed_local;
    seed_local.reserve(seeds.size());
    for (std::int64_t s : seeds)
        seed_local.push_back(remap.at(s));

    return Minibatch(std::move(sub), std::move(nodes),
                     std::move(seed_local));
}

tensor::Tensor
gatherFeatures(const Minibatch &mb, const tensor::Tensor &host_features)
{
    const std::int64_t dim = host_features.dim(1);
    tensor::Tensor device({mb.subgraph.numNodes(), dim});
    for (std::int64_t i = 0; i < mb.subgraph.numNodes(); ++i) {
        const float *src = host_features.row(
            mb.nodeMap[static_cast<std::size_t>(i)]);
        float *dst = device.row(i);
        for (std::int64_t j = 0; j < dim; ++j)
            dst[j] = src[j];
    }
    return device;
}

double
hostTransferSec(double bytes, const sim::DeviceSpec &spec)
{
    // PCIe-like link, ~25 GB/s effective, plus one DMA setup.
    const double pcie_bandwidth = 25.0e9;
    return bytes / pcie_bandwidth + 10.0e-6 * spec.overheadScale;
}

tensor::Tensor
transferFeatures(const Minibatch &mb, const tensor::Tensor &host_features,
                 sim::Runtime &rt)
{
    tensor::Tensor device = gatherFeatures(mb, host_features);
    // Host-to-device copy of the gathered features plus the adjacency
    // structure.
    const double bytes =
        static_cast<double>(device.bytes()) +
        static_cast<double>(mb.subgraph.structureBytes());
    rt.hostOverhead(hostTransferSec(bytes, rt.spec()));
    return device;
}

} // namespace hector::graph
