/**
 * @file
 * Deterministic edge-cut graph partitioning for multi-device serving.
 *
 * Sharded serving splits the host-resident HeteroGraph across N
 * simulated devices; what the interconnect model charges for is the
 * *cut* — every edge whose endpoints land on different shards forces
 * the source vertex's feature row across a link (halo exchange). The
 * partitioner is a streaming linear-deterministic-greedy (LDG) pass:
 * vertices are visited in a seeded, bit-stable order within each node
 * type segment and placed on the shard holding most of their already
 * placed neighbors, discounted by that shard's fill so shards stay
 * balanced per node type. Everything is integer/bit-stable: the same
 * seed yields the same partition on every run and platform, which the
 * golden determinism tests rely on.
 */

#ifndef HECTOR_GRAPH_PARTITION_HH
#define HECTOR_GRAPH_PARTITION_HH

#include <cstdint>
#include <vector>

#include "graph/hetero_graph.hh"

namespace hector::graph
{

/** Partitioning knobs. */
struct PartitionSpec
{
    /** Number of shards (devices) to cut the graph into. */
    int numShards = 1;
    /**
     * Allowed per-node-type overfill: no shard holds more than
     * ceil(nodes_of_type / numShards * (1 + tolerance)) vertices of
     * any type (and never less headroom than a perfectly even split
     * needs, so the constraint is always feasible).
     */
    double balanceTolerance = 0.10;
    /** Seed of the vertex visit order; the partition is a pure
     *  function of (graph, spec). */
    std::uint64_t seed = 0x9a27;
};

/** An edge-cut partition of a HeteroGraph's vertex set. */
struct Partition
{
    int numShards = 1;
    /** Shard id of every vertex, size numNodes. */
    std::vector<std::int32_t> shardOf;
    /** Vertices per shard, size numShards. */
    std::vector<std::int64_t> shardSizes;
    /** Vertices per (node type, shard): sizesByType[t][s]. */
    std::vector<std::vector<std::int64_t>> sizesByType;
    /** Edges whose endpoints live on different shards. */
    std::int64_t cutEdges = 0;
    /** Total edges of the partitioned graph. */
    std::int64_t totalEdges = 0;

    /** Fraction of edges crossing shards, in [0, 1]. */
    double
    cutRatio() const
    {
        return totalEdges ? static_cast<double>(cutEdges) /
                                static_cast<double>(totalEdges)
                          : 0.0;
    }
};

/**
 * Partition @p g into spec.numShards balanced shards. Deterministic:
 * equal (graph, spec) always produce bit-identical Partition contents.
 */
Partition partitionGraph(const HeteroGraph &g, const PartitionSpec &spec);

/** Independent recount of the edge cut implied by @p shard_of. */
std::int64_t countCutEdges(const HeteroGraph &g,
                           const std::vector<std::int32_t> &shard_of);

/**
 * Halo-exchange matrix of the cut: entry [i * numShards + j] is the
 * number of *unique* vertices owned by shard i whose feature row shard
 * j needs because some edge runs from them into shard j. The diagonal
 * is zero. Multiplying by the feature-row byte size gives the bytes a
 * full-graph halo exchange moves over each directed link.
 */
std::vector<std::int64_t> haloMatrix(const HeteroGraph &g,
                                     const Partition &p);

} // namespace hector::graph

#endif // HECTOR_GRAPH_PARTITION_HH
