/**
 * @file
 * Hector as a System: compiles the requested model with the requested
 * optimization combination and executes the generated kernel
 * instances for real (math + modeled cost), unlike the baselines
 * whose strategies are cost-modeled around a reference computation.
 */

#include <stdexcept>

#include "baselines/baseline.hh"
#include "core/compiler.hh"
#include "models/models.hh"

namespace hector::baselines
{

using graph::CompactionMap;
using graph::HeteroGraph;
using models::ModelKind;
using models::WeightMap;
using tensor::Tensor;

namespace
{

class HectorSystemImpl : public System
{
  public:
    explicit HectorSystemImpl(std::string tag) : tag_(std::move(tag))
    {
        if (tag_ != "" && tag_ != "C" && tag_ != "R" && tag_ != "C+R")
            throw std::runtime_error("unknown Hector option tag: " + tag_);
    }

    std::string
    name() const override
    {
        return tag_.empty() ? "Hector" : "Hector " + tag_;
    }

    bool
    supports(ModelKind, bool) const override
    {
        return true;
    }

    RunResult
    run(ModelKind m, const HeteroGraph &g, const WeightMap &w,
        const Tensor &feature, sim::Runtime &rt,
        bool training) const override
    {
        core::CompileOptions opts;
        opts.compactMaterialization = tag_ == "C" || tag_ == "C+R";
        opts.linearReorder = tag_ == "R" || tag_ == "C+R";
        opts.training = training;

        core::Program program =
            models::buildModel(m, g, feature.dim(1), w.count("W")
                                                         ? w.at("W").dim(2)
                                                         : w.at("K").dim(2));
        const core::CompiledModel compiled = core::compile(program, opts);

        std::optional<CompactionMap> cmap;
        if (opts.compactMaterialization)
            cmap.emplace(g);

        rt.resetCounters();
        RunResult res;
        {
            auto scope = rt.memoryScope();
            core::ExecutionContext ctx;
            ctx.g = &g;
            ctx.cmap = cmap ? &*cmap : nullptr;
            ctx.rt = &rt;
            // Weight map copies share tensor storage; composed weights
            // are added to the copy without touching the caller's map.
            WeightMap weights = w;
            WeightMap grads;
            ctx.weights = &weights;
            ctx.weightGrads = &grads;
            try {
                if (training) {
                    res.output = core::trainStep(compiled, ctx, feature);
                } else {
                    core::bindInputs(compiled, ctx, feature);
                    res.output = compiled.forward(ctx);
                }
                // Detach the result from the tracked storage so it
                // outlives the memory scope cleanly.
                tensor::TrackerScope untracked(nullptr);
                res.output = res.output.clone();
            } catch (const tensor::OomError &) {
                res.oom = true;
            }
        }
        res.timeMs = rt.totalTimeMs();
        res.peakBytes = rt.tracker().peakBytes();
        res.launches = rt.counters().total().launches;
        return res;
    }

  private:
    std::string tag_;
};

} // namespace

std::unique_ptr<System>
hectorSystem(const std::string &opt_tag)
{
    return std::make_unique<HectorSystemImpl>(opt_tag);
}

} // namespace hector::baselines
