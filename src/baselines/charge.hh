/**
 * @file
 * Cost-charging helpers shared by the baseline system models.
 *
 * Every helper issues one (or a fixed number of) kernel launches on
 * the simulated device with FLOP / byte / atomic counts derived from
 * the documented behaviour of the system being modeled. Framework-
 * level operator dispatch cost (the CUDA API overhead the paper
 * profiles at ~22% of the critical path for Graphiler) is charged via
 * frameworkOp().
 */

#ifndef HECTOR_BASELINES_CHARGE_HH
#define HECTOR_BASELINES_CHARGE_HH

#include <cstdint>
#include <string>

#include "graph/hetero_graph.hh"
#include "sim/runtime.hh"

namespace hector::baselines
{

/** Per-operator framework (PyTorch-like) dispatch overhead. */
inline constexpr double kFrameworkOpSeconds = 4.0e-6;

/** Charge a framework operator dispatch. */
void frameworkOp(sim::Runtime &rt, int count = 1);

/** One dense GEMM: rows x din times din x dout. */
void chargeGemm(sim::Runtime &rt, sim::Phase phase, const std::string &name,
                double rows, double din, double dout,
                double extra_read_bytes = 0.0);

/**
 * Batched matrix multiply over per-row replicated weights (the PyG
 * FastRGCNConv strategy): same FLOPs as a segment MM but every row
 * re-reads its own din x dout weight slice, making it bandwidth
 * bound.
 */
void chargeBmmReplicated(sim::Runtime &rt, sim::Phase phase,
                         const std::string &name, double rows, double din,
                         double dout);

/** Indexing / copy kernel moving rows*cols floats. */
void chargeCopy(sim::Runtime &rt, sim::Phase phase, const std::string &name,
                double rows, double cols);

/** Pointwise kernel over n elements. */
void chargeElementwise(sim::Runtime &rt, sim::Phase phase,
                       const std::string &name, double n);

/** Edge-parallel traversal with optional atomic node aggregation. */
void chargeTraversal(sim::Runtime &rt, sim::Phase phase,
                     const std::string &name, double edges, double cols,
                     bool atomic, const graph::HeteroGraph &g);

/** Edge-softmax as the usual 3-kernel sequence. */
void chargeEdgeSoftmax(sim::Runtime &rt, sim::Phase phase,
                       const graph::HeteroGraph &g);

/**
 * A per-relation Python-level loop (the DGL HeteroConv pattern):
 * launches @p kernels_per_rel small kernels for each relation
 * segment, each sized to that segment.
 */
void chargePerRelationGemms(sim::Runtime &rt, sim::Phase phase,
                            const std::string &name,
                            const graph::HeteroGraph &g, double din,
                            double dout, int kernels_per_rel);

} // namespace hector::baselines

#endif // HECTOR_BASELINES_CHARGE_HH
