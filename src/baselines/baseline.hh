/**
 * @file
 * Common interface for the execution systems the paper compares.
 *
 * Each baseline reproduces the *execution strategy* of one published
 * system — its kernel-launch structure, data movement, and
 * materialization behaviour — on the shared tensor / simulated-device
 * substrate. Forward outputs are computed with the independent
 * reference implementations so every system is numerically identical;
 * what differs (and what the benchmarks measure) is the cost the
 * simulated device is charged and the memory the strategy allocates.
 * Training runs additionally charge each system's backward kernel
 * sequence and allocate its gradient buffers.
 */

#ifndef HECTOR_BASELINES_BASELINE_HH
#define HECTOR_BASELINES_BASELINE_HH

#include <memory>
#include <string>
#include <vector>

#include "graph/compaction.hh"
#include "graph/hetero_graph.hh"
#include "models/models.hh"
#include "sim/runtime.hh"
#include "tensor/tensor.hh"

namespace hector::baselines
{

/** Outcome of one measured run. */
struct RunResult
{
    tensor::Tensor output;
    bool oom = false;
    /** Modeled execution time in milliseconds. */
    double timeMs = 0.0;
    /** Peak simulated device memory in bytes. */
    std::size_t peakBytes = 0;
    /** Total kernel launches. */
    std::uint64_t launches = 0;
};

/** One execution system (a baseline or a Hector configuration). */
class System
{
  public:
    virtual ~System() = default;

    virtual std::string name() const = 0;

    /** Systems can lack model / training support (Sec. 4.1). */
    virtual bool supports(models::ModelKind m, bool training) const = 0;

    /**
     * Run one inference (or one training step when @p training) and
     * report modeled time / memory. OOM is reported, not thrown.
     */
    virtual RunResult run(models::ModelKind m, const graph::HeteroGraph &g,
                          const models::WeightMap &w,
                          const tensor::Tensor &feature, sim::Runtime &rt,
                          bool training) const = 0;
};

/** The five prior systems of the paper's evaluation. */
std::vector<std::unique_ptr<System>> priorSystems();

/**
 * Hector under a given optimization setting. Naming follows Table 5:
 * "" (unopt), "C", "R", or "C+R".
 */
std::unique_ptr<System> hectorSystem(const std::string &opt_tag);

} // namespace hector::baselines

#endif // HECTOR_BASELINES_BASELINE_HH
