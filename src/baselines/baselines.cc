#include "baselines/baseline.hh"

#include <functional>

#include "baselines/charge.hh"
#include "models/reference.hh"

namespace hector::baselines
{

using graph::HeteroGraph;
using models::ModelKind;
using models::WeightMap;
using sim::Phase;
using tensor::Tensor;

namespace
{

/**
 * Shared run harness: open the device memory scope, execute the
 * strategy body (which allocates temporaries and charges kernels),
 * then compute the numerically-correct output with the reference
 * implementation outside memory accounting. OOM is caught and
 * reported the way the paper's tables do.
 */
RunResult
runGuarded(sim::Runtime &rt,
           const std::function<void()> &strategy_body,
           const std::function<Tensor()> &reference_output)
{
    rt.resetCounters();
    RunResult res;
    {
        auto scope = rt.memoryScope();
        try {
            strategy_body();
        } catch (const tensor::OomError &) {
            res.oom = true;
        }
    }
    if (!res.oom) {
        tensor::TrackerScope untracked(nullptr);
        res.output = reference_output();
    }
    res.timeMs = rt.totalTimeMs();
    res.peakBytes = rt.tracker().peakBytes();
    res.launches = rt.counters().total().launches;
    return res;
}

/** Weight shapes used for temporary allocation decisions. */
struct Dims
{
    double din;
    double dout;
};

Dims
dimsOf(ModelKind m, const WeightMap &w)
{
    switch (m) {
      case ModelKind::Rgcn:
      case ModelKind::Rgat: {
        const Tensor &t = w.at("W");
        return {static_cast<double>(t.dim(1)),
                static_cast<double>(t.dim(2))};
      }
      case ModelKind::Hgt: {
        const Tensor &t = w.at("K");
        return {static_cast<double>(t.dim(1)),
                static_cast<double>(t.dim(2))};
      }
    }
    return {0, 0};
}

/**
 * DGL-style execution (Sec. 4.2): segment-MM based RGCN / HGT
 * primitives are its fast path; RGAT runs as a per-relation Python
 * loop launching small kernels for every edge type.
 */
class DglSystem : public System
{
  public:
    std::string name() const override { return "DGL"; }

    bool
    supports(ModelKind, bool) const override
    {
        return true;
    }

    RunResult
    run(ModelKind m, const HeteroGraph &g, const WeightMap &w,
        const Tensor &feature, sim::Runtime &rt,
        bool training) const override
    {
        const Dims d = dimsOf(m, w);
        const double e = static_cast<double>(g.numEdges());
        const double n = static_cast<double>(g.numNodes());

        auto body = [&]() {
            switch (m) {
              case ModelKind::Rgcn: {
                Tensor gathered({g.numEdges(),
                                 static_cast<std::int64_t>(d.din)});
                Tensor msg({g.numEdges(),
                            static_cast<std::int64_t>(d.dout)});
                Tensor out({g.numNodes(),
                            static_cast<std::int64_t>(d.dout)});
                chargeCopy(rt, Phase::Forward, "gather_src", e, d.din);
                chargeGemm(rt, Phase::Forward, "segment_mm", e, d.din,
                           d.dout);
                chargeTraversal(rt, Phase::Forward, "spmm_agg", e, d.dout,
                                false, g);
                chargeGemm(rt, Phase::Forward, "self_loop", n, d.din,
                           d.dout);
                chargeElementwise(rt, Phase::Forward, "add", n * d.dout);
                frameworkOp(rt, 6);
                if (training) {
                    Tensor dmsg({g.numEdges(),
                                 static_cast<std::int64_t>(d.dout)});
                    chargeTraversal(rt, Phase::Backward, "spmm_bwd", e,
                                    d.dout, false, g);
                    chargeGemm(rt, Phase::Backward, "segment_mm_dx", e,
                               d.dout, d.din);
                    chargeGemm(rt, Phase::Backward, "segment_mm_dw", e,
                               d.din, d.dout);
                    chargeTraversal(rt, Phase::Backward, "scatter_dx", e,
                                    d.din, true, g);
                    chargeGemm(rt, Phase::Backward, "self_loop_dw", n,
                               d.din, d.dout);
                    frameworkOp(rt, 6);
                }
                break;
              }
              case ModelKind::Rgat: {
                // HeteroConv-style per-relation loop: 2 GEMMs plus
                // gather / dot / activation kernels per edge type.
                // Gathered endpoint features are materialized per
                // relation before the GEMMs.
                Tensor gathered({g.numEdges(),
                                 static_cast<std::int64_t>(d.din)});
                Tensor hs({g.numEdges(),
                           static_cast<std::int64_t>(d.dout)});
                Tensor ht({g.numEdges(),
                           static_cast<std::int64_t>(d.dout)});
                Tensor att({g.numEdges(), 1});
                // HeteroConv collects per-relation outputs and then
                // torch.cat's them into a fresh buffer while the
                // per-relation results are still alive.
                Tensor concat_buf({g.numEdges(),
                                   static_cast<std::int64_t>(d.dout)});
                chargeCopy(rt, Phase::Forward, "concat_outputs",
                           static_cast<double>(g.numEdges()), d.dout);
                chargePerRelationGemms(rt, Phase::Forward, "rgat_hs", g,
                                       d.din, d.dout, 2);
                for (int r = 0; r < g.numEdgeTypes(); ++r) {
                    const double rows =
                        static_cast<double>(g.numEdgesOfType(r));
                    if (rows == 0.0)
                        continue;
                    chargeCopy(rt, Phase::Forward, "gather", rows, d.din);
                    chargeElementwise(rt, Phase::Forward, "dot+lrelu",
                                      rows * d.dout);
                    frameworkOp(rt, 4);
                }
                chargeEdgeSoftmax(rt, Phase::Forward, g);
                chargeTraversal(rt, Phase::Forward, "agg", e, d.dout, true,
                                g);
                if (training) {
                    // Autograd re-runs the per-relation Python loop
                    // with gradient kernels for every forward op,
                    // plus per-relation gather/scatter of gradients.
                    Tensor dhs({g.numEdges(),
                                static_cast<std::int64_t>(d.dout)});
                    Tensor dht({g.numEdges(),
                                static_cast<std::int64_t>(d.dout)});
                    chargePerRelationGemms(rt, Phase::Backward, "rgat_bwd",
                                           g, d.din, d.dout, 6);
                    for (int r = 0; r < g.numEdgeTypes(); ++r) {
                        const double rows =
                            static_cast<double>(g.numEdgesOfType(r));
                        if (rows == 0.0)
                            continue;
                        chargeCopy(rt, Phase::Backward, "grad_gather",
                                   rows, d.din);
                        chargeCopy(rt, Phase::Backward, "grad_scatter",
                                   rows, d.dout);
                        frameworkOp(rt, 2);
                    }
                    chargeEdgeSoftmax(rt, Phase::Backward, g);
                    chargeTraversal(rt, Phase::Backward, "att_wvec_grads",
                                    e, 2.0 * d.dout, true, g);
                    chargeTraversal(rt, Phase::Backward, "agg_bwd", e,
                                    d.dout, true, g);
                    chargeTraversal(rt, Phase::Backward, "dx_scatter", e,
                                    d.din, true, g);
                }
                break;
              }
              case ModelKind::Hgt: {
                // Segment-MM based HGTConv: typed projections then
                // segmented edge ops.
                Tensor kqv({3 * g.numNodes(),
                            static_cast<std::int64_t>(d.dout)});
                Tensor gathered({2 * g.numEdges(),
                                 static_cast<std::int64_t>(d.dout)});
                Tensor msg({g.numEdges(),
                            static_cast<std::int64_t>(d.dout)});
                Tensor att({g.numEdges(), 1});
                // Per-head attention/message assembly workspace
                // (torch.cat of per-segment outputs).
                Tensor workspace({g.numEdges(),
                                  static_cast<std::int64_t>(d.dout)});
                chargeCopy(rt, Phase::Forward, "assemble_outputs",
                           static_cast<double>(g.numEdges()), d.dout);
                for (int i = 0; i < 3; ++i)
                    chargeGemm(rt, Phase::Forward, "proj_kqv", n, d.din,
                               d.dout);
                chargeCopy(rt, Phase::Forward, "gather_kv", 2.0 * e,
                           d.dout);
                chargeGemm(rt, Phase::Forward, "segment_mm_att", e, d.dout,
                           d.dout);
                chargeGemm(rt, Phase::Forward, "segment_mm_msg", e, d.dout,
                           d.dout);
                chargeTraversal(rt, Phase::Forward, "att_dot", e, d.dout,
                                false, g);
                chargeEdgeSoftmax(rt, Phase::Forward, g);
                chargeTraversal(rt, Phase::Forward, "agg", e, d.dout, true,
                                g);
                frameworkOp(rt, 12);
                if (training) {
                    // Gradients of the gathered k/v copies and of both
                    // segmented edge operators are materialized
                    // edgewise before the weight-gradient GEMMs.
                    Tensor dmsg({2 * g.numEdges(),
                                 static_cast<std::int64_t>(d.dout)});
                    Tensor dgathered({2 * g.numEdges(),
                                      static_cast<std::int64_t>(d.dout)});
                    for (int i = 0; i < 6; ++i)
                        chargeGemm(rt, Phase::Backward, "segment_mm_bwd", e,
                                   d.dout, d.dout);
                    chargeCopy(rt, Phase::Backward, "grad_gather",
                               2.0 * e, d.dout);
                    chargeCopy(rt, Phase::Backward, "grad_scatter",
                               2.0 * e, d.dout);
                    for (int i = 0; i < 3; ++i)
                        chargeGemm(rt, Phase::Backward, "proj_bwd", n,
                                   d.din, d.dout);
                    chargeEdgeSoftmax(rt, Phase::Backward, g);
                    chargeTraversal(rt, Phase::Backward, "agg_bwd", e,
                                    d.dout, true, g);
                    chargeTraversal(rt, Phase::Backward, "dkv_scatter", e,
                                    d.dout, true, g);
                    frameworkOp(rt, 18);
                }
                break;
              }
            }
        };
        return runGuarded(
            rt, body, [&]() { return referenceForward(m, g, w, feature); });
    }
};

/**
 * PyG-style execution: FastRGCNConv materializes a per-edge weight
 * tensor W'[i] = W[T[i]] (the Sec. 2.3 case study) and runs bmm();
 * RGAT / HGT follow the same replication pattern for edgewise typed
 * operators. Fast, until the replicated tensor blows device memory.
 */
class PygSystem : public System
{
  public:
    std::string name() const override { return "PyG"; }

    bool
    supports(ModelKind, bool) const override
    {
        return true;
    }

    RunResult
    run(ModelKind m, const HeteroGraph &g, const WeightMap &w,
        const Tensor &feature, sim::Runtime &rt,
        bool training) const override
    {
        const Dims d = dimsOf(m, w);
        const double e = static_cast<double>(g.numEdges());
        const double n = static_cast<double>(g.numNodes());

        auto replicate = [&](double rows, double rdin, double rdout,
                             Phase ph) {
            // Materialize W'[i, :, :] = W[T[i], :, :].
            Tensor rep({static_cast<std::int64_t>(rows),
                        static_cast<std::int64_t>(rdin),
                        static_cast<std::int64_t>(rdout)});
            chargeCopy(rt, ph, "replicate_weights", rows, rdin * rdout);
            return rep;
        };

        auto body = [&]() {
            switch (m) {
              case ModelKind::Rgcn: {
                Tensor rep = replicate(e, d.din, d.dout, Phase::Forward);
                Tensor msg({g.numEdges(),
                            static_cast<std::int64_t>(d.dout)});
                chargeBmmReplicated(rt, Phase::Forward, "bmm", e, d.din,
                                    d.dout);
                chargeTraversal(rt, Phase::Forward, "scatter_agg", e,
                                d.dout, true, g);
                chargeGemm(rt, Phase::Forward, "self_loop", n, d.din,
                           d.dout);
                frameworkOp(rt, 5);
                if (training) {
                    // Per-copy weight gradients before reduction.
                    Tensor drep =
                        replicate(e, d.din, d.dout, Phase::Backward);
                    chargeBmmReplicated(rt, Phase::Backward, "bmm_dx", e,
                                        d.dout, d.din);
                    chargeBmmReplicated(rt, Phase::Backward, "bmm_dw", e,
                                        d.din, d.dout);
                    chargeTraversal(rt, Phase::Backward, "reduce_dw", e,
                                    d.din * d.dout / 8.0, true, g);
                    frameworkOp(rt, 5);
                }
                break;
              }
              case ModelKind::Rgat: {
                Tensor rep = replicate(e, d.din, d.dout, Phase::Forward);
                Tensor hs({g.numEdges(),
                           static_cast<std::int64_t>(d.dout)});
                Tensor ht({g.numEdges(),
                           static_cast<std::int64_t>(d.dout)});
                chargeBmmReplicated(rt, Phase::Forward, "bmm_hs", e, d.din,
                                    d.dout);
                chargeBmmReplicated(rt, Phase::Forward, "bmm_ht", e, d.din,
                                    d.dout);
                chargeElementwise(rt, Phase::Forward, "att_dots",
                                  2.0 * e * d.dout);
                chargeEdgeSoftmax(rt, Phase::Forward, g);
                chargeTraversal(rt, Phase::Forward, "agg", e, d.dout, true,
                                g);
                frameworkOp(rt, 8);
                if (training) {
                    Tensor drep =
                        replicate(e, d.din, d.dout, Phase::Backward);
                    chargeBmmReplicated(rt, Phase::Backward, "bmm_bwd1", e,
                                        d.dout, d.din);
                    chargeBmmReplicated(rt, Phase::Backward, "bmm_bwd2", e,
                                        d.din, d.dout);
                    chargeEdgeSoftmax(rt, Phase::Backward, g);
                    chargeTraversal(rt, Phase::Backward, "agg_bwd", e,
                                    d.dout, true, g);
                    chargeTraversal(rt, Phase::Backward, "reduce_dw", e,
                                    d.din * d.dout / 8.0, true, g);
                    frameworkOp(rt, 8);
                }
                break;
              }
              case ModelKind::Hgt: {
                // Per-node-type projections then replicated edge ops.
                for (int t = 0; t < g.numNodeTypes(); ++t)
                    for (int i = 0; i < 3; ++i) {
                        const double rows = static_cast<double>(
                            g.ntypePtr()[static_cast<std::size_t>(t) + 1] -
                            g.ntypePtr()[static_cast<std::size_t>(t)]);
                        if (rows > 0.0)
                            chargeGemm(rt, Phase::Forward, "proj", rows,
                                       d.din, d.dout);
                    }
                frameworkOp(rt, 3 * g.numNodeTypes());
                Tensor rep = replicate(e, d.dout, d.dout, Phase::Forward);
                Tensor msg({g.numEdges(),
                            static_cast<std::int64_t>(d.dout)});
                chargeBmmReplicated(rt, Phase::Forward, "bmm_att", e,
                                    d.dout, d.dout);
                chargeBmmReplicated(rt, Phase::Forward, "bmm_msg", e,
                                    d.dout, d.dout);
                chargeEdgeSoftmax(rt, Phase::Forward, g);
                chargeTraversal(rt, Phase::Forward, "agg", e, d.dout, true,
                                g);
                frameworkOp(rt, 6);
                if (training) {
                    Tensor drep =
                        replicate(e, d.dout, d.dout, Phase::Backward);
                    chargeBmmReplicated(rt, Phase::Backward, "bmm_bwd", e,
                                        d.dout, d.dout);
                    chargeBmmReplicated(rt, Phase::Backward, "bmm_bwd2", e,
                                        d.dout, d.dout);
                    chargeEdgeSoftmax(rt, Phase::Backward, g);
                    chargeTraversal(rt, Phase::Backward, "agg_bwd", e,
                                    d.dout, true, g);
                    frameworkOp(rt, 8);
                }
                break;
              }
            }
        };
        return runGuarded(
            rt, body, [&]() { return referenceForward(m, g, w, feature); });
    }
};

/**
 * Seastar-style execution: a vertex-centric compiler that lowers the
 * whole layer to a handful of fused sparse kernels — few launches and
 * small footprint, but typed linear transforms run at traversal-
 * kernel efficiency instead of GEMM efficiency (the paper's "lower
 * to GEMM as much as possible" comparison point).
 */
class SeastarSystem : public System
{
  public:
    std::string name() const override { return "Seastar"; }

    bool
    supports(ModelKind, bool) const override
    {
        return true;
    }

    RunResult
    run(ModelKind m, const HeteroGraph &g, const WeightMap &w,
        const Tensor &feature, sim::Runtime &rt,
        bool training) const override
    {
        const Dims d = dimsOf(m, w);
        const double e = static_cast<double>(g.numEdges());
        const double n = static_cast<double>(g.numNodes());

        auto fusedSparseLinear = [&](const std::string &nm, double rows,
                                     double rdin, double rdout, Phase ph) {
            sim::KernelDesc kd;
            kd.name = nm;
            kd.category = sim::KernelCategory::Traversal;
            kd.phase = ph;
            kd.flops = 2.0 * rows * rdin * rdout;
            kd.bytesRead = 4.0 * rows * rdin + 4.0 * rdin * rdout +
                           16.0 * rows;
            kd.bytesWritten = 4.0 * rows * rdout;
            kd.workItems = rows * rdout;
            // Vertex-centric generated code performs the dense
            // transform as per-thread scalar GEMV with no shared-
            // memory tiling; sustained FP32 is a small fraction of
            // peak (this is the paper's "lower to GEMM as much as
            // possible" finding).
            kd.computeEff = 0.025;
            rt.launch(kd, nullptr);
        };

        auto body = [&]() {
            switch (m) {
              case ModelKind::Rgcn: {
                // One fused vertex-centric kernel + self loop.
                fusedSparseLinear("seastar_rgcn", e, d.din, d.dout,
                                  Phase::Forward);
                fusedSparseLinear("seastar_selfloop", n, d.din, d.dout,
                                  Phase::Forward);
                frameworkOp(rt, 2);
                if (training) {
                    fusedSparseLinear("seastar_rgcn_bwd", 2.0 * e, d.din,
                                      d.dout, Phase::Backward);
                    fusedSparseLinear("seastar_selfloop_bwd", n, d.din,
                                      d.dout, Phase::Backward);
                    chargeTraversal(rt, Phase::Backward, "dx_scatter", e,
                                    d.din, true, g);
                }
                break;
              }
              case ModelKind::Rgat: {
                Tensor att({g.numEdges(), 1});
                fusedSparseLinear("seastar_msg_att", 2.0 * e, d.din, d.dout,
                                  Phase::Forward);
                chargeEdgeSoftmax(rt, Phase::Forward, g);
                chargeTraversal(rt, Phase::Forward, "agg", e, d.dout, true,
                                g);
                frameworkOp(rt, 3);
                if (training) {
                    fusedSparseLinear("seastar_bwd", 4.0 * e, d.din, d.dout,
                                      Phase::Backward);
                    chargeEdgeSoftmax(rt, Phase::Backward, g);
                    chargeTraversal(rt, Phase::Backward, "agg_bwd", e,
                                    d.dout, true, g);
                }
                break;
              }
              case ModelKind::Hgt: {
                Tensor att({g.numEdges(), 1});
                fusedSparseLinear("seastar_proj", 3.0 * n, d.din, d.dout,
                                  Phase::Forward);
                fusedSparseLinear("seastar_edge", 2.0 * e, d.dout, d.dout,
                                  Phase::Forward);
                chargeEdgeSoftmax(rt, Phase::Forward, g);
                chargeTraversal(rt, Phase::Forward, "agg", e, d.dout, true,
                                g);
                frameworkOp(rt, 4);
                if (training) {
                    fusedSparseLinear("seastar_bwd", 4.0 * e, d.dout,
                                      d.dout, Phase::Backward);
                    fusedSparseLinear("seastar_proj_bwd", 3.0 * n, d.din,
                                      d.dout, Phase::Backward);
                    chargeEdgeSoftmax(rt, Phase::Backward, g);
                    chargeTraversal(rt, Phase::Backward, "agg_bwd", e,
                                    d.dout, true, g);
                }
                break;
              }
            }
        };
        return runGuarded(
            rt, body, [&]() { return referenceForward(m, g, w, feature); });
    }
};

/**
 * Graphiler-style execution (inference only): compiled TorchScript
 * with pre-programmed fused kernels. Strong on RGCN / HGT; RGAT hits
 * the non-exhaustive fused-kernel set and falls back to unfused
 * edgewise operators with heavy indexing / copying (Fig. 3).
 */
class GraphilerSystem : public System
{
  public:
    std::string name() const override { return "Graphiler"; }

    bool
    supports(ModelKind, bool training) const override
    {
        return !training; // TorchScript autodiff limitation (Sec. 4.2)
    }

    RunResult
    run(ModelKind m, const HeteroGraph &g, const WeightMap &w,
        const Tensor &feature, sim::Runtime &rt,
        bool training) const override
    {
        (void)training;
        const Dims d = dimsOf(m, w);
        const double e = static_cast<double>(g.numEdges());
        const double n = static_cast<double>(g.numNodes());

        auto body = [&]() {
            switch (m) {
              case ModelKind::Rgcn: {
                Tensor gathered({g.numEdges(),
                                 static_cast<std::int64_t>(d.din)});
                Tensor msg({g.numEdges(),
                            static_cast<std::int64_t>(d.dout)});
                chargeCopy(rt, Phase::Forward, "gather_src", e, d.din);
                chargeGemm(rt, Phase::Forward, "segment_mm", e, d.din,
                           d.dout);
                chargeTraversal(rt, Phase::Forward, "fused_agg", e, d.dout,
                                false, g);
                chargeGemm(rt, Phase::Forward, "self_loop", n, d.din,
                           d.dout);
                frameworkOp(rt, 2); // compiled: little dispatch overhead
                break;
              }
              case ModelKind::Rgat: {
                // Fallback path: unfused edgewise ops + required
                // data copies + per-edge weight broadcast.
                Tensor gathered({2 * g.numEdges(),
                                 static_cast<std::int64_t>(d.din)});
                Tensor rep({g.numEdges(),
                            static_cast<std::int64_t>(d.din),
                            static_cast<std::int64_t>(d.dout)});
                Tensor hs({g.numEdges(),
                           static_cast<std::int64_t>(d.dout)});
                Tensor ht({g.numEdges(),
                           static_cast<std::int64_t>(d.dout)});
                chargeCopy(rt, Phase::Forward, "gather_src", e, d.din);
                chargeCopy(rt, Phase::Forward, "gather_dst", e, d.din);
                chargeCopy(rt, Phase::Forward, "broadcast_w", e,
                           d.din * d.dout);
                chargeBmmReplicated(rt, Phase::Forward, "bmm_hs", e, d.din,
                                    d.dout);
                chargeBmmReplicated(rt, Phase::Forward, "bmm_ht", e, d.din,
                                    d.dout);
                chargeCopy(rt, Phase::Forward, "gather_wvec", 2.0 * e,
                           d.dout);
                chargeElementwise(rt, Phase::Forward, "dots+lrelu",
                                  2.0 * e * d.dout);
                chargeEdgeSoftmax(rt, Phase::Forward, g);
                chargeTraversal(rt, Phase::Forward, "agg", e, d.dout, true,
                                g);
                frameworkOp(rt, 6);
                break;
              }
              case ModelKind::Hgt: {
                Tensor kqv({3 * g.numNodes(),
                            static_cast<std::int64_t>(d.dout)});
                Tensor gathered({2 * g.numEdges(),
                                 static_cast<std::int64_t>(d.dout)});
                Tensor msg({g.numEdges(),
                            static_cast<std::int64_t>(d.dout)});
                for (int i = 0; i < 3; ++i)
                    chargeGemm(rt, Phase::Forward, "proj", n, d.din,
                               d.dout);
                chargeCopy(rt, Phase::Forward, "gather_kv", 2.0 * e,
                           d.dout);
                chargeGemm(rt, Phase::Forward, "segment_mm_att", e, d.dout,
                           d.dout);
                chargeGemm(rt, Phase::Forward, "segment_mm_msg", e, d.dout,
                           d.dout);
                chargeTraversal(rt, Phase::Forward, "fused_att_softmax_agg",
                                3.0 * e, d.dout, false, g);
                frameworkOp(rt, 3);
                break;
              }
            }
        };
        return runGuarded(
            rt, body, [&]() { return referenceForward(m, g, w, feature); });
    }
};

/**
 * HGL-style execution (training-oriented RGNN compiler): holistic
 * inter-operator optimization reduces launch counts below DGL's, but
 * typed linear layers still replicate weights, which costs memory and
 * bandwidth (HGL's frequent OOMs in Fig. 8a).
 */
class HglSystem : public System
{
  public:
    std::string name() const override { return "HGL"; }

    bool
    supports(ModelKind m, bool training) const override
    {
        return training && m != ModelKind::Hgt; // no HGT support
    }

    RunResult
    run(ModelKind m, const HeteroGraph &g, const WeightMap &w,
        const Tensor &feature, sim::Runtime &rt,
        bool training) const override
    {
        (void)training;
        const Dims d = dimsOf(m, w);
        const double e = static_cast<double>(g.numEdges());
        const double n = static_cast<double>(g.numNodes());

        auto body = [&]() {
            Tensor rep({g.numEdges(), static_cast<std::int64_t>(d.din),
                        static_cast<std::int64_t>(d.dout)});
            chargeCopy(rt, Phase::Forward, "replicate_weights", e,
                       d.din * d.dout);
            if (m == ModelKind::Rgcn) {
                chargeBmmReplicated(rt, Phase::Forward, "bmm", e, d.din,
                                    d.dout);
                chargeTraversal(rt, Phase::Forward, "fused_agg", e, d.dout,
                                false, g);
                chargeGemm(rt, Phase::Forward, "self_loop", n, d.din,
                           d.dout);
                frameworkOp(rt, 3);
                Tensor drep({g.numEdges(),
                             static_cast<std::int64_t>(d.din),
                             static_cast<std::int64_t>(d.dout)});
                chargeBmmReplicated(rt, Phase::Backward, "bmm_bwd", e,
                                    d.dout, d.din);
                chargeBmmReplicated(rt, Phase::Backward, "bmm_dw", e, d.din,
                                    d.dout);
                chargeTraversal(rt, Phase::Backward, "reduce_dw", e,
                                d.din * d.dout / 8.0, true, g);
                frameworkOp(rt, 3);
            } else {
                Tensor hs({g.numEdges(),
                           static_cast<std::int64_t>(d.dout)});
                Tensor ht({g.numEdges(),
                           static_cast<std::int64_t>(d.dout)});
                chargeBmmReplicated(rt, Phase::Forward, "bmm_hs", e, d.din,
                                    d.dout);
                chargeBmmReplicated(rt, Phase::Forward, "bmm_ht", e, d.din,
                                    d.dout);
                chargeElementwise(rt, Phase::Forward, "dots",
                                  2.0 * e * d.dout);
                chargeEdgeSoftmax(rt, Phase::Forward, g);
                chargeTraversal(rt, Phase::Forward, "fused_agg", e, d.dout,
                                false, g);
                frameworkOp(rt, 4);
                Tensor drep({g.numEdges(),
                             static_cast<std::int64_t>(d.din),
                             static_cast<std::int64_t>(d.dout)});
                chargeBmmReplicated(rt, Phase::Backward, "bmm_bwd", e,
                                    d.dout, d.din);
                chargeBmmReplicated(rt, Phase::Backward, "bmm_dw", e, d.din,
                                    d.dout);
                chargeEdgeSoftmax(rt, Phase::Backward, g);
                chargeTraversal(rt, Phase::Backward, "agg_bwd", e, d.dout,
                                true, g);
                chargeTraversal(rt, Phase::Backward, "reduce_dw", e,
                                d.din * d.dout / 8.0, true, g);
                frameworkOp(rt, 4);
            }
        };
        return runGuarded(
            rt, body, [&]() { return referenceForward(m, g, w, feature); });
    }
};

} // namespace

std::vector<std::unique_ptr<System>>
priorSystems()
{
    std::vector<std::unique_ptr<System>> out;
    out.push_back(std::make_unique<DglSystem>());
    out.push_back(std::make_unique<PygSystem>());
    out.push_back(std::make_unique<SeastarSystem>());
    out.push_back(std::make_unique<GraphilerSystem>());
    out.push_back(std::make_unique<HglSystem>());
    return out;
}

} // namespace hector::baselines
