#include "baselines/charge.hh"

#include <algorithm>

namespace hector::baselines
{

void
frameworkOp(sim::Runtime &rt, int count)
{
    rt.hostOverhead(kFrameworkOpSeconds * count *
                    rt.spec().overheadScale);
}

void
chargeGemm(sim::Runtime &rt, sim::Phase phase, const std::string &name,
           double rows, double din, double dout, double extra_read_bytes)
{
    sim::KernelDesc d;
    d.name = name;
    d.category = sim::KernelCategory::Gemm;
    d.phase = phase;
    d.flops = 2.0 * rows * din * dout;
    d.bytesRead = 4.0 * rows * din +
                  4.0 * din * dout * rt.spec().datasetScale +
                  extra_read_bytes;
    d.bytesWritten = 4.0 * rows * dout;
    d.workItems = rows * dout;
    rt.launch(d, nullptr);
}

void
chargeBmmReplicated(sim::Runtime &rt, sim::Phase phase,
                    const std::string &name, double rows, double din,
                    double dout)
{
    sim::KernelDesc d;
    d.name = name;
    d.category = sim::KernelCategory::Gemm;
    d.phase = phase;
    d.flops = 2.0 * rows * din * dout;
    // Each row streams its private replicated weight slice.
    d.bytesRead = 4.0 * rows * din + 4.0 * rows * din * dout;
    d.bytesWritten = 4.0 * rows * dout;
    d.workItems = rows * dout;
    // Per-row weight reads defeat the shared-memory reuse a tuned
    // GEMM relies on.
    d.computeEff = 0.30;
    rt.launch(d, nullptr);
}

void
chargeCopy(sim::Runtime &rt, sim::Phase phase, const std::string &name,
           double rows, double cols)
{
    sim::KernelDesc d;
    d.name = name;
    d.category = sim::KernelCategory::Index;
    d.phase = phase;
    d.bytesRead = 4.0 * rows * cols + 8.0 * rows;
    d.bytesWritten = 4.0 * rows * cols;
    d.workItems = rows * cols;
    rt.launch(d, nullptr);
}

void
chargeElementwise(sim::Runtime &rt, sim::Phase phase,
                  const std::string &name, double n)
{
    sim::KernelDesc d;
    d.name = name;
    d.category = sim::KernelCategory::Elementwise;
    d.phase = phase;
    d.flops = n;
    d.bytesRead = 4.0 * n;
    d.bytesWritten = 4.0 * n;
    d.workItems = n;
    rt.launch(d, nullptr);
}

void
chargeTraversal(sim::Runtime &rt, sim::Phase phase, const std::string &name,
                double edges, double cols, bool atomic,
                const graph::HeteroGraph &g)
{
    sim::KernelDesc d;
    d.name = name;
    d.category = sim::KernelCategory::Traversal;
    d.phase = phase;
    d.flops = 2.0 * edges * cols;
    d.bytesRead = 4.0 * edges * cols + 16.0 * edges;
    d.bytesWritten = 4.0 * edges * cols;
    d.workItems = edges * cols;
    if (atomic) {
        // Warp-level pre-aggregation before global atomics, as in
        // framework SpMM/scatter kernels.
        d.atomics = edges * cols / 8.0;
        d.atomicConflict = std::max(1.0, g.avgNonzeroInDegree());
    }
    rt.launch(d, nullptr);
}

void
chargeEdgeSoftmax(sim::Runtime &rt, sim::Phase phase,
                  const graph::HeteroGraph &g)
{
    const double e = static_cast<double>(g.numEdges());
    chargeElementwise(rt, phase, "edge_softmax_exp", e);
    chargeTraversal(rt, phase, "edge_softmax_sum", e, 1.0, true, g);
    chargeTraversal(rt, phase, "edge_softmax_div", e, 1.0, false, g);
    frameworkOp(rt, 3);
}

void
chargePerRelationGemms(sim::Runtime &rt, sim::Phase phase,
                       const std::string &name, const graph::HeteroGraph &g,
                       double din, double dout, int kernels_per_rel)
{
    // The paper blames DGL HeteroConv's Python-native loop for serial
    // launches of small kernels; each iteration pays interpreter +
    // dispatch time well beyond the bare kernel-launch latency.
    const double python_iter_seconds = 2.0e-5;
    for (int r = 0; r < g.numEdgeTypes(); ++r) {
        const double rows = static_cast<double>(g.numEdgesOfType(r));
        if (rows == 0.0)
            continue;
        for (int k = 0; k < kernels_per_rel; ++k) {
            chargeGemm(rt, phase, name + "_rel" + std::to_string(r), rows,
                       din, dout);
        }
        frameworkOp(rt, kernels_per_rel);
        rt.hostOverhead(python_iter_seconds * rt.spec().overheadScale);
    }
}

} // namespace hector::baselines
