#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/json_log.hh"

namespace hector::obs
{

namespace detail
{
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_deterministic{true};
} // namespace detail

void
setEnabled(bool on)
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void
setDeterministic(bool on)
{
    detail::g_deterministic.store(on, std::memory_order_relaxed);
}

namespace
{
thread_local double tls_virtual_now = 0.0;
} // namespace

double
virtualNow()
{
    return tls_virtual_now;
}

void
setVirtualNow(double sec)
{
    tls_virtual_now = sec;
}

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    if (std::strtod(buf, nullptr) != v)
        std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

double
Tracer::wallNowSec()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

Tracer::Ring &
Tracer::localRing()
{
    thread_local std::shared_ptr<Ring> tls_ring;
    thread_local Tracer *tls_owner = nullptr;
    if (!tls_ring || tls_owner != this) {
        tls_ring = std::make_shared<Ring>(
            capacity_.load(std::memory_order_relaxed));
        tls_owner = this;
        std::lock_guard<std::mutex> lock(mu_);
        rings_.push_back(tls_ring);
    }
    return *tls_ring;
}

void
Tracer::record(TraceEvent ev)
{
    Ring &r = localRing();
    const std::uint64_t n = r.count.load(std::memory_order_relaxed);
    ev.seq = n;
    r.events[static_cast<std::size_t>(n % r.events.size())] =
        std::move(ev);
    r.count.store(n + 1, std::memory_order_release);
}

void
Tracer::complete(std::string name, const char *cat, double ts_sec,
                 double dur_sec, int pid, int tid, std::string args,
                 double wall_ms)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'X';
    ev.clock = Clock::Virtual;
    ev.tsSec = ts_sec;
    ev.durSec = dur_sec;
    ev.pid = pid;
    ev.tid = tid;
    ev.wallMs = wall_ms;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
Tracer::instant(std::string name, const char *cat, double ts_sec,
                int pid, int tid, std::string args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'i';
    ev.clock = Clock::Virtual;
    ev.tsSec = ts_sec;
    ev.pid = pid;
    ev.tid = tid;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
Tracer::wallSpan(std::string name, const char *cat, double start_sec,
                 double dur_sec, int tid, std::string args)
{
    TraceEvent ev;
    ev.name = std::move(name);
    ev.cat = cat;
    ev.ph = 'X';
    ev.clock = Clock::Wall;
    ev.tsSec = start_sec;
    ev.durSec = dur_sec;
    ev.pid = kWallPid;
    ev.tid = tid;
    ev.wallMs = dur_sec * 1e3;
    ev.args = std::move(args);
    record(std::move(ev));
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    for (auto &r : rings_) {
        r->count.store(0, std::memory_order_relaxed);
        if (r->events.size() != cap) {
            r->events.clear();
            r->events.resize(cap);
        }
    }
}

void
Tracer::setCapacity(std::size_t per_thread_events)
{
    capacity_.store(per_thread_events < 1 ? 1 : per_thread_events,
                    std::memory_order_relaxed);
}

std::size_t
Tracer::capacity() const
{
    return capacity_.load(std::memory_order_relaxed);
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t total = 0;
    for (const auto &r : rings_) {
        const std::uint64_t n = r->count.load(std::memory_order_acquire);
        const std::uint64_t cap = r->events.size();
        if (n > cap)
            total += n - cap;
    }
    return total;
}

std::size_t
Tracer::recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t total = 0;
    for (const auto &r : rings_) {
        const std::uint64_t n = r->count.load(std::memory_order_acquire);
        const std::uint64_t cap = r->events.size();
        total += static_cast<std::size_t>(n < cap ? n : cap);
    }
    return total;
}

std::vector<TraceEvent>
Tracer::collect() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceEvent> out;
    for (const auto &r : rings_) {
        const std::uint64_t n = r->count.load(std::memory_order_acquire);
        const std::uint64_t cap = r->events.size();
        const std::uint64_t live = n < cap ? n : cap;
        for (std::uint64_t i = n - live; i < n; ++i)
            out.push_back(
                r->events[static_cast<std::size_t>(i % cap)]);
    }
    return out;
}

std::string
Tracer::exportJson() const
{
    std::vector<TraceEvent> evs = collect();
    const bool det = deterministic();
    if (det)
        evs.erase(std::remove_if(evs.begin(), evs.end(),
                                 [](const TraceEvent &e) {
                                     return e.clock != Clock::Virtual;
                                 }),
                  evs.end());
    // Global timestamp order (then pid, tid, per-thread sequence):
    // makes the document canonical — the determinism gate compares it
    // byte for byte — and monotone for the CI trace checker.
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsSec != b.tsSec)
                             return a.tsSec < b.tsSec;
                         if (a.pid != b.pid)
                             return a.pid < b.pid;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         if (a.seq != b.seq)
                             return a.seq < b.seq;
                         return a.name < b.name;
                     });

    std::vector<int> pids;
    for (const TraceEvent &e : evs)
        pids.push_back(e.pid);
    std::sort(pids.begin(), pids.end());
    pids.erase(std::unique(pids.begin(), pids.end()), pids.end());

    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&](const std::string &line) {
        if (!first)
            out += ",\n";
        first = false;
        out += line;
    };
    for (const int pid : pids) {
        const std::string label =
            pid == kWallPid ? "wall" : "device" + std::to_string(pid);
        emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) +
             ",\"tid\":0,\"args\":{\"name\":\"" + label + "\"}}");
    }
    char buf[64];
    for (const TraceEvent &e : evs) {
        std::string line = "{\"name\":\"" + jsonEscape(e.name) +
                           "\",\"cat\":\"" + jsonEscape(e.cat) +
                           "\",\"ph\":\"";
        line += e.ph;
        line += "\",\"pid\":" + std::to_string(e.pid) +
                ",\"tid\":" + std::to_string(e.tid);
        std::snprintf(buf, sizeof buf, ",\"ts\":%.3f", e.tsSec * 1e6);
        line += buf;
        if (e.ph == 'X') {
            std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                          e.durSec * 1e6);
            line += buf;
        }
        if (e.ph == 'i')
            line += ",\"s\":\"t\"";
        const double wall_ms = det ? 0.0 : e.wallMs;
        std::snprintf(buf, sizeof buf, "%.6f", wall_ms);
        line += ",\"args\":{\"wall_ms\":";
        line += buf;
        if (!e.args.empty()) {
            line += ',';
            line += e.args;
        }
        line += "}}";
        emit(line);
    }
    out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{"
           "\"clock\":\"virtual-us\",\"deterministic\":";
    out += det ? "true" : "false";
    if (!det)
        out += ",\"dropped\":" + std::to_string(dropped());
    out += "}}\n";
    return out;
}

bool
Tracer::writeJson(const std::string &name) const
{
    const std::string path = "TRACE_" + name + ".json";
    if (!util::writeFileAtomic(path, exportJson()))
        return false;
    std::printf("wrote %s (%zu events)\n", path.c_str(), recorded());
    return true;
}

Tracer &
tracer()
{
    static Tracer t;
    return t;
}

Span::Span(std::string name, const char *cat, double virtual_start_sec,
           int pid, int tid)
{
    if (!enabled())
        return;
    active_ = true;
    ev_.name = std::move(name);
    ev_.cat = cat;
    ev_.ph = 'X';
    ev_.clock = Clock::Virtual;
    ev_.tsSec = virtual_start_sec;
    ev_.pid = pid;
    ev_.tid = tid;
    wallStartSec_ = Tracer::wallNowSec();
}

Span
Span::wall(std::string name, const char *cat, int tid)
{
    Span s;
    if (!enabled())
        return s;
    s.active_ = true;
    s.ev_.name = std::move(name);
    s.ev_.cat = cat;
    s.ev_.ph = 'X';
    s.ev_.clock = Clock::Wall;
    s.ev_.pid = kWallPid;
    s.ev_.tid = tid;
    s.wallStartSec_ = Tracer::wallNowSec();
    s.ev_.tsSec = s.wallStartSec_;
    return s;
}

Span::Span(Span &&o) noexcept
    : active_(o.active_), ev_(std::move(o.ev_)),
      wallStartSec_(o.wallStartSec_), virtualEnd_(o.virtualEnd_)
{
    o.active_ = false;
}

Span &
Span::operator=(Span &&o) noexcept
{
    if (this != &o) {
        finish();
        active_ = o.active_;
        ev_ = std::move(o.ev_);
        wallStartSec_ = o.wallStartSec_;
        virtualEnd_ = o.virtualEnd_;
        o.active_ = false;
    }
    return *this;
}

void
Span::arg(const char *key, double v)
{
    if (!active_)
        return;
    if (!ev_.args.empty())
        ev_.args += ',';
    ev_.args += '"';
    ev_.args += key;
    ev_.args += "\":";
    ev_.args += jsonNum(v);
}

void
Span::arg(const char *key, std::uint64_t v)
{
    if (!active_)
        return;
    if (!ev_.args.empty())
        ev_.args += ',';
    ev_.args += '"';
    ev_.args += key;
    ev_.args += "\":";
    ev_.args += std::to_string(v);
}

void
Span::arg(const char *key, const char *v)
{
    if (!active_)
        return;
    if (!ev_.args.empty())
        ev_.args += ',';
    ev_.args += '"';
    ev_.args += key;
    ev_.args += "\":\"";
    ev_.args += jsonEscape(v);
    ev_.args += '"';
}

void
Span::endAt(double virtual_end_sec)
{
    if (active_)
        virtualEnd_ = virtual_end_sec;
}

void
Span::finish()
{
    if (!active_)
        return;
    active_ = false;
    const double wall_sec = Tracer::wallNowSec() - wallStartSec_;
    ev_.wallMs = wall_sec * 1e3;
    if (ev_.clock == Clock::Wall)
        ev_.durSec = wall_sec;
    else if (virtualEnd_ > ev_.tsSec)
        ev_.durSec = virtualEnd_ - ev_.tsSec;
    tracer().record(std::move(ev_));
}

} // namespace hector::obs
