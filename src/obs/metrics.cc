#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>

#include "obs/trace.hh"

namespace hector::obs
{

Histogram::Histogram(double lo_exp, double hi_exp,
                     int buckets_per_decade)
{
    const int n = static_cast<int>(
        std::lround((hi_exp - lo_exp) * buckets_per_decade));
    edges_.reserve(static_cast<std::size_t>(n) + 1);
    for (int i = 0; i <= n; ++i)
        edges_.push_back(
            std::pow(10.0, lo_exp + static_cast<double>(i) /
                                        buckets_per_decade));
    counts_.assign(edges_.size() + 1, 0);
}

void
Histogram::observe(double v)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
    counts_[static_cast<std::size_t>(it - edges_.begin())] += 1;
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += 1;
    sum_ += v;
}

std::uint64_t
Histogram::count() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
}

double
Histogram::sum() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
}

double
Histogram::min() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return min_;
}

double
Histogram::max() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return max_;
}

double
Histogram::percentile(double q) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0)
        return 0.0;
    std::uint64_t rank =
        static_cast<std::uint64_t>(std::ceil(q * count_));
    if (rank < 1)
        rank = 1;
    if (rank > count_)
        rank = count_;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        cum += counts_[i];
        if (cum >= rank)
            return i < edges_.size() ? edges_[i] : edges_.back();
    }
    return edges_.back();
}

std::string
Histogram::json() const
{
    std::string out = "{\"count\":" + std::to_string(count());
    out += ",\"sum\":" + jsonNum(sum());
    out += ",\"min\":" + jsonNum(min());
    out += ",\"max\":" + jsonNum(max());
    out += ",\"p50\":" + jsonNum(percentile(0.50));
    out += ",\"p95\":" + jsonNum(percentile(0.95));
    out += ",\"p99\":" + jsonNum(percentile(0.99));
    out += ",\"p999\":" + jsonNum(percentile(0.999));
    out += "}";
    return out;
}

void
Histogram::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::fill(counts_.begin(), counts_.end(), 0);
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Counter &
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
Registry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

std::string
Registry::snapshotJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        if (!first)
            out += ',';
        first = false;
        out += "\"" + jsonEscape(name) +
               "\":" + std::to_string(c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &[name, g] : gauges_) {
        if (!first)
            out += ',';
        first = false;
        out += "\"" + jsonEscape(name) + "\":" + jsonNum(g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        if (!first)
            out += ',';
        first = false;
        out += "\"" + jsonEscape(name) + "\":" + h->json();
    }
    out += "}}";
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

void
Registry::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

Registry &
metrics()
{
    static Registry r;
    return r;
}

} // namespace hector::obs
