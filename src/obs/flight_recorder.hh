/**
 * @file
 * Per-request flight recorder: each serving request's lifecycle —
 * arrival → enqueue → admission → batch-join → plan lookup →
 * per-device exec → halo exchange → all-gather → completion — accrues
 * as a timeline of (what, modeled time, device, detail) events keyed
 * by the request id, so a single slow request's path through the
 * stack is reconstructible after the fact.
 *
 * Attachment is the opt-in: Engine / OnlineServer / ShardedSession
 * record into a recorder only when one has been attached via
 * setFlightRecorder(), independent of the obs::enabled() tracer
 * switch, so a caller can ask for one request's timeline without
 * paying for full-trace recording. Bounded: beyond maxRequests() the
 * oldest request's timeline is evicted (first-seen order).
 *
 * Not thread-safe by design — all serving-stack recording happens on
 * the driving thread, like the engines themselves.
 */

#ifndef HECTOR_OBS_FLIGHT_RECORDER_HH
#define HECTOR_OBS_FLIGHT_RECORDER_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace hector::obs
{

struct FlightEvent
{
    std::string what;   ///< lifecycle step, e.g. "enqueue", "exec-start"
    double tSec = 0.0;  ///< modeled time of the step
    int device = 0;
    std::string detail; ///< free-form annotation, e.g. "stream=1"
};

class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t max_requests = 1024)
        : maxRequests_(max_requests < 1 ? 1 : max_requests)
    {}

    void event(std::uint64_t request_id, std::string what, double t_sec,
               int device = 0, std::string detail = {});

    /** The timeline for @p request_id, or nullptr if unknown/evicted.
     *  Events appear in record order. */
    const std::vector<FlightEvent> *timeline(std::uint64_t request_id) const;

    /** Request ids currently held, in first-seen order. */
    const std::deque<std::uint64_t> &requests() const { return order_; }

    /** One JSON object: {"request":id,"events":[{"what":..,"t_ms":..,
     *  "device":..,"detail":..},..]}; "{}" if unknown. */
    std::string timelineJson(std::uint64_t request_id) const;

    /** Human-readable timeline table with per-step deltas. */
    std::string timelineText(std::uint64_t request_id) const;

    std::size_t maxRequests() const { return maxRequests_; }
    void clear();

  private:
    std::size_t maxRequests_;
    std::map<std::uint64_t, std::vector<FlightEvent>> timelines_;
    std::deque<std::uint64_t> order_;
};

} // namespace hector::obs

#endif // HECTOR_OBS_FLIGHT_RECORDER_HH
