/**
 * @file
 * Deterministic span tracer: Chrome trace_event / Perfetto-compatible
 * timeline recording for the serving stack.
 *
 * Two clocks, one timeline. Spans over modeled work carry virtual
 * timestamps (the monotone `sim::Runtime` clocks), so the trace shows
 * the *simulated* schedule — queue waits, halo exchanges, per-stream
 * kernel packing — exactly as the cost model computed it. Each span
 * additionally measures its own wall-clock duration (host time really
 * spent) as an `args.wall_ms` annotation. Wall-only spans (thread-pool
 * chunks) live on a separate reserved pid lane.
 *
 * Determinism contract: in deterministic mode (`setDeterministic`),
 * exportJson() emits only virtual-clock events, zeroes every wall-time
 * field, and orders events by (timestamp, pid, tid, per-thread
 * sequence). All virtual-time instrumentation in the repo runs on the
 * driving thread against thread-count-invariant modeled clocks, so two
 * runs at the same seed — at *any* thread count — produce byte-identical
 * trace JSON. Traces are regression-testable artifacts; the
 * bench_serving_multi trace gate enforces this byte-for-byte.
 *
 * Hot-path cost when disabled: every instrumentation site guards on
 * obs::enabled(), a single relaxed atomic load that inlines everywhere.
 * When enabled, record() appends to a lock-free single-producer
 * per-thread ring buffer (no shared mutable state on the record path);
 * the registry mutex is touched only on a thread's first event and at
 * export/clear time, which the callers reach only at quiescence.
 */

#ifndef HECTOR_OBS_TRACE_HH
#define HECTOR_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hector::obs
{

namespace detail
{
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_deterministic;
} // namespace detail

/** Master tracing switch, default off. The guard every hot-path
 *  instrumentation site checks before doing any work. */
inline bool
enabled()
{
    return detail::g_enabled.load(std::memory_order_relaxed);
}
void setEnabled(bool on);

/**
 * Deterministic export mode: exportJson() drops wall-only events and
 * zeroes wall_ms so the output depends only on modeled time. Default
 * on — traces are regression artifacts first, profiles second.
 */
inline bool
deterministic()
{
    return detail::g_deterministic.load(std::memory_order_relaxed);
}
void setDeterministic(bool on);

/**
 * Thread-local virtual "now" for instrumentation sites that have no
 * runtime reference of their own (PlanCache). Callers that do own a
 * clock (Engine, OnlineServer, ShardedSession) publish it here before
 * descending into such code.
 */
double virtualNow();
void setVirtualNow(double sec);

/** Reserved pid lane for wall-clock-only events (thread-pool chunks),
 *  keeping them visually and semantically apart from modeled devices. */
constexpr int kWallPid = 999;

enum class Clock : std::uint8_t
{
    Virtual, ///< modeled seconds; included in deterministic exports
    Wall     ///< host seconds since trace epoch; dropped when deterministic
};

struct TraceEvent
{
    std::string name;
    /** Category tag; must outlive the tracer (string literals only). */
    const char *cat = "";
    char ph = 'X'; ///< 'X' complete span, 'i' instant, 'M' metadata
    Clock clock = Clock::Virtual;
    double tsSec = 0.0;
    double durSec = 0.0;
    int pid = 0; ///< device id (virtual) or kWallPid (wall)
    int tid = 0; ///< stream / lane (virtual) or chunk index (wall)
    /** Measured host time; zeroed in deterministic exports. */
    double wallMs = 0.0;
    /** Pre-rendered extra args: comma-joined "key":value pairs
     *  without the surrounding braces. */
    std::string args;
    /** Per-thread record sequence, assigned by the tracer; the export
     *  sort's final tiebreaker so equal-timestamp events keep their
     *  record order. */
    std::uint64_t seq = 0;
};

/**
 * Process-wide event sink. Each recording thread owns a fixed-capacity
 * ring (oldest events overwritten on overflow, counted in dropped());
 * rings are registered as shared_ptr so they survive thread exit —
 * pool rebuilds must not lose events already recorded.
 */
class Tracer
{
  public:
    /** Append one event (single-producer per calling thread). */
    void record(TraceEvent ev);

    /** Record a complete ('X') virtual-time span. */
    void complete(std::string name, const char *cat, double ts_sec,
                  double dur_sec, int pid = 0, int tid = 0,
                  std::string args = {}, double wall_ms = 0.0);

    /** Record an instant ('i') virtual-time event. */
    void instant(std::string name, const char *cat, double ts_sec,
                 int pid = 0, int tid = 0, std::string args = {});

    /** Record a complete wall-clock-only span on the kWallPid lane. */
    void wallSpan(std::string name, const char *cat, double start_sec,
                  double dur_sec, int tid = 0, std::string args = {});

    /** Drop every recorded event and reset drop counts. Call only at
     *  quiescence (no concurrent record()). */
    void clear();

    /** Per-thread ring capacity; applies to rings created (or cleared)
     *  after the call. */
    void setCapacity(std::size_t per_thread_events);
    std::size_t capacity() const;

    /** Events lost to ring overflow, summed over all rings. */
    std::uint64_t dropped() const;

    /** Events currently held (post-overflow), summed over all rings. */
    std::size_t recorded() const;

    /** Host seconds since the process trace epoch (steady_clock). */
    static double wallNowSec();

    /**
     * Render the Chrome trace_event JSON document ("traceEvents"
     * array envelope; ts/dur in microseconds). Load in
     * chrome://tracing or https://ui.perfetto.dev. Call at quiescence.
     */
    std::string exportJson() const;

    /** exportJson() to TRACE_<name>.json via util::writeFileAtomic. */
    bool writeJson(const std::string &name) const;

  private:
    struct Ring
    {
        explicit Ring(std::size_t cap) : events(cap) {}
        std::vector<TraceEvent> events;
        std::atomic<std::uint64_t> count{0};
    };

    Ring &localRing();
    std::vector<TraceEvent> collect() const;

    mutable std::mutex mu_;
    std::vector<std::shared_ptr<Ring>> rings_;
    std::atomic<std::size_t> capacity_{std::size_t{1} << 16};
};

/** The process-wide tracer every instrumentation site records to. */
Tracer &tracer();

/**
 * RAII span. Construct with the modeled start time, optionally endAt()
 * the modeled end time (defaults to a zero-duration modeled span), add
 * args; the destructor measures the wall-clock duration and records.
 * Default-constructed or constructed-while-disabled spans are inert.
 */
class Span
{
  public:
    Span() = default;
    Span(std::string name, const char *cat, double virtual_start_sec,
         int pid = 0, int tid = 0);

    /** A wall-clock-only span (kWallPid lane); excluded from
     *  deterministic exports. */
    static Span wall(std::string name, const char *cat, int tid = 0);

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
    Span(Span &&o) noexcept;
    Span &operator=(Span &&o) noexcept;
    ~Span() { finish(); }

    void arg(const char *key, double v);
    void arg(const char *key, std::uint64_t v);
    void arg(const char *key, const char *v);

    /** Set the modeled end time (clamped to >= the start). */
    void endAt(double virtual_end_sec);

    /** Record now instead of at destruction. Idempotent. */
    void finish();

    bool active() const { return active_; }

  private:
    bool active_ = false;
    TraceEvent ev_;
    double wallStartSec_ = 0.0;
    double virtualEnd_ = -1.0;
};

/** Shortest round-trippable rendering of @p v ("%.17g" tier only when
 *  needed); the single number formatter for trace and metrics JSON so
 *  identical doubles always render identically. */
std::string jsonNum(double v);

/** Escape @p s for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace hector::obs

#endif // HECTOR_OBS_TRACE_HH
