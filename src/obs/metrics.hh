/**
 * @file
 * Typed metrics registry: counters, gauges, and log-bucketed latency
 * histograms with bit-stable percentiles.
 *
 * This is the single sink the serving stack's ad-hoc stat structs
 * (PlanCache::Stats, ServingReport, sim::Counters) absorb into —
 * see absorbStats()/absorbReport()/absorbCounters() in the owning
 * modules (obs is a base library and includes none of them) — and the
 * single snapshotJson() emitter the benches share.
 *
 * Percentile stability: a Histogram never stores raw samples. It
 * counts observations into FIXED log-spaced buckets and reports a
 * percentile as the upper edge of the bucket holding the nearest-rank
 * observation. The same multiset of observations — in any insertion
 * order, at any thread count — therefore yields byte-identical
 * p50/p95/p99/p99.9 strings in the snapshot.
 */

#ifndef HECTOR_OBS_METRICS_HH
#define HECTOR_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hector::obs
{

class Counter
{
  public:
    void inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }
    std::uint64_t value() const
    {
        return v_.load(std::memory_order_relaxed);
    }
    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

class Gauge
{
  public:
    void set(double v) { v_.store(v, std::memory_order_relaxed); }
    double value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { v_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> v_{0.0};
};

/**
 * Log-bucketed histogram. Default edges cover 10^-6 .. 10^4 (enough
 * for microsecond kernel times through multi-second makespans, in ms
 * or sec alike) with @p buckets_per_decade edges per power of ten,
 * plus an implicit overflow bucket clamped to the top edge.
 */
class Histogram
{
  public:
    explicit Histogram(double lo_exp = -6.0, double hi_exp = 4.0,
                       int buckets_per_decade = 4);

    void observe(double v);

    std::uint64_t count() const;
    double sum() const;
    double min() const; ///< exact smallest observation (0 if empty)
    double max() const; ///< exact largest observation (0 if empty)

    /**
     * Nearest-rank percentile over the fixed bucket edges: the upper
     * edge of the bucket containing observation ceil(q * count).
     * Returns 0 when empty; @p q in [0, 1].
     */
    double percentile(double q) const;

    const std::vector<double> &edges() const { return edges_; }

    /** {"count":..,"sum":..,"min":..,"max":..,"p50":..,"p95":..,
     *  "p99":..,"p999":..} with jsonNum-rendered values. */
    std::string json() const;

    void reset();

  private:
    mutable std::mutex mu_;
    std::vector<double> edges_;          ///< ascending upper edges
    std::vector<std::uint64_t> counts_;  ///< edges_.size() + 1 (overflow)
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Named metric registry. Instruments are created on first use and live
 * for the registry's lifetime (references stay valid); snapshotJson()
 * renders everything sorted by name so the output is canonical.
 */
class Registry
{
  public:
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** {"counters":{..},"gauges":{..},"histograms":{..}} sorted by
     *  name — the one emitter every bench shares. */
    std::string snapshotJson() const;

    /** Zero every instrument, keep registrations. */
    void reset();

    /** Drop every instrument (invalidates outstanding references). */
    void clear();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** The process-wide registry the instrumentation records into. */
Registry &metrics();

} // namespace hector::obs

#endif // HECTOR_OBS_METRICS_HH
