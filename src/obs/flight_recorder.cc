#include "obs/flight_recorder.hh"

#include <cstdio>

#include "obs/trace.hh"

namespace hector::obs
{

void
FlightRecorder::event(std::uint64_t request_id, std::string what,
                      double t_sec, int device, std::string detail)
{
    auto it = timelines_.find(request_id);
    if (it == timelines_.end()) {
        if (timelines_.size() >= maxRequests_) {
            timelines_.erase(order_.front());
            order_.pop_front();
        }
        it = timelines_.emplace(request_id,
                                std::vector<FlightEvent>{}).first;
        order_.push_back(request_id);
    }
    it->second.push_back(FlightEvent{std::move(what), t_sec, device,
                                     std::move(detail)});
}

const std::vector<FlightEvent> *
FlightRecorder::timeline(std::uint64_t request_id) const
{
    const auto it = timelines_.find(request_id);
    return it == timelines_.end() ? nullptr : &it->second;
}

std::string
FlightRecorder::timelineJson(std::uint64_t request_id) const
{
    const std::vector<FlightEvent> *tl = timeline(request_id);
    if (!tl)
        return "{}";
    std::string out =
        "{\"request\":" + std::to_string(request_id) + ",\"events\":[";
    for (std::size_t i = 0; i < tl->size(); ++i) {
        const FlightEvent &e = (*tl)[i];
        if (i)
            out += ',';
        out += "{\"what\":\"" + jsonEscape(e.what) +
               "\",\"t_ms\":" + jsonNum(e.tSec * 1e3) +
               ",\"device\":" + std::to_string(e.device) +
               ",\"detail\":\"" + jsonEscape(e.detail) + "\"}";
    }
    out += "]}";
    return out;
}

std::string
FlightRecorder::timelineText(std::uint64_t request_id) const
{
    const std::vector<FlightEvent> *tl = timeline(request_id);
    if (!tl)
        return "request " + std::to_string(request_id) +
               ": no timeline recorded\n";
    std::string out =
        "request " + std::to_string(request_id) + " timeline:\n";
    char buf[160];
    const double t0 = tl->empty() ? 0.0 : tl->front().tSec;
    double prev = t0;
    for (const FlightEvent &e : *tl) {
        std::snprintf(buf, sizeof buf,
                      "  %10.4f ms  (+%8.4f)  dev%-2d %-12s %s\n",
                      (e.tSec - t0) * 1e3, (e.tSec - prev) * 1e3,
                      e.device, e.what.c_str(), e.detail.c_str());
        out += buf;
        prev = e.tSec;
    }
    return out;
}

void
FlightRecorder::clear()
{
    timelines_.clear();
    order_.clear();
}

} // namespace hector::obs
