/**
 * @file
 * Device-memory accounting for simulated GPU allocations.
 *
 * Every Tensor allocation registers its byte count with the tracker
 * installed for the current thread. The simulator installs a tracker
 * with the (scaled) device capacity so that workloads which would not
 * fit on the modeled GPU raise OomError exactly where the real system
 * would raise a CUDA out-of-memory error. This is the mechanism behind
 * the paper's OOM columns (Fig. 8, Table 4) and the memory-footprint
 * study (Fig. 10).
 */

#ifndef HECTOR_TENSOR_MEMORY_TRACKER_HH
#define HECTOR_TENSOR_MEMORY_TRACKER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hector::tensor
{

/**
 * Thrown when a tracked allocation exceeds the modeled device capacity.
 * Mirrors a CUDA out-of-memory error in the paper's experiments.
 */
class OomError : public std::runtime_error
{
  public:
    OomError(std::size_t requested, std::size_t live, std::size_t capacity)
        : std::runtime_error(
              "simulated device OOM: requested " +
              std::to_string(requested) + " B with " + std::to_string(live) +
              " B live, capacity " + std::to_string(capacity) + " B"),
          requestedBytes(requested), liveBytes(live), capacityBytes(capacity)
    {}

    std::size_t requestedBytes;
    std::size_t liveBytes;
    std::size_t capacityBytes;
};

/**
 * Accounts live and peak bytes of tensor storage and enforces a
 * capacity limit. A capacity of zero means "unlimited" (used by tests
 * and host-side scratch work).
 *
 * All bookkeeping is lock-free atomic so the parallel kernels (the
 * ThreadPool propagates the launching thread's tracker into its
 * workers) cannot race the OOM-boundary accounting: the live-byte
 * counter is advanced with a compare-exchange that re-checks the
 * capacity, so concurrent allocations can never jointly overshoot the
 * modeled device capacity without one of them throwing.
 */
class MemoryTracker
{
  public:
    /** @param capacity_bytes Simulated device capacity; 0 = unlimited. */
    explicit MemoryTracker(std::size_t capacity_bytes = 0)
        : capacityBytes_(capacity_bytes)
    {}

    MemoryTracker(const MemoryTracker &) = delete;
    MemoryTracker &operator=(const MemoryTracker &) = delete;

    /**
     * Register an allocation.
     * @throws OomError when the allocation would exceed capacity.
     */
    void
    onAlloc(std::size_t bytes)
    {
        std::size_t cur = liveBytes_.load(std::memory_order_relaxed);
        for (;;) {
            if (capacityBytes_ != 0 && cur + bytes > capacityBytes_) {
                oomCount_.fetch_add(1, std::memory_order_relaxed);
                throw OomError(bytes, cur, capacityBytes_);
            }
            if (liveBytes_.compare_exchange_weak(
                    cur, cur + bytes, std::memory_order_relaxed))
                break;
        }
        totalAllocBytes_.fetch_add(bytes, std::memory_order_relaxed);
        allocCount_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t live = cur + bytes;
        std::size_t peak = peakBytes_.load(std::memory_order_relaxed);
        while (live > peak &&
               !peakBytes_.compare_exchange_weak(
                   peak, live, std::memory_order_relaxed)) {
        }
    }

    /** Register a deallocation (clamped at zero live bytes). */
    void
    onFree(std::size_t bytes)
    {
        std::size_t cur = liveBytes_.load(std::memory_order_relaxed);
        while (!liveBytes_.compare_exchange_weak(
            cur, bytes > cur ? 0 : cur - bytes,
            std::memory_order_relaxed)) {
        }
    }

    std::size_t
    liveBytes() const
    {
        return liveBytes_.load(std::memory_order_relaxed);
    }
    std::size_t
    peakBytes() const
    {
        return peakBytes_.load(std::memory_order_relaxed);
    }
    std::size_t
    totalAllocBytes() const
    {
        return totalAllocBytes_.load(std::memory_order_relaxed);
    }
    std::size_t
    allocCount() const
    {
        return allocCount_.load(std::memory_order_relaxed);
    }
    std::size_t capacityBytes() const { return capacityBytes_; }
    std::size_t
    oomCount() const
    {
        return oomCount_.load(std::memory_order_relaxed);
    }

    /**
     * Reset peak/total statistics but keep live accounting intact.
     * Not meant to run concurrently with allocations.
     */
    void
    resetStats()
    {
        peakBytes_.store(liveBytes_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
        totalAllocBytes_.store(0, std::memory_order_relaxed);
        allocCount_.store(0, std::memory_order_relaxed);
        oomCount_.store(0, std::memory_order_relaxed);
    }

  private:
    std::size_t capacityBytes_;
    std::atomic<std::size_t> liveBytes_{0};
    std::atomic<std::size_t> peakBytes_{0};
    std::atomic<std::size_t> totalAllocBytes_{0};
    std::atomic<std::size_t> allocCount_{0};
    std::atomic<std::size_t> oomCount_{0};
};

/**
 * Returns the tracker installed for the current thread, or nullptr when
 * allocations are untracked (the default).
 */
MemoryTracker *currentTracker();

/**
 * RAII scope that installs a tracker for the current thread.
 * Non-copyable; nests correctly (restores the previous tracker).
 */
class TrackerScope
{
  public:
    explicit TrackerScope(MemoryTracker *tracker);
    ~TrackerScope();

    TrackerScope(const TrackerScope &) = delete;
    TrackerScope &operator=(const TrackerScope &) = delete;

  private:
    MemoryTracker *prev_;
};

} // namespace hector::tensor

#endif // HECTOR_TENSOR_MEMORY_TRACKER_HH
