/**
 * @file
 * Device-memory accounting for simulated GPU allocations.
 *
 * Every Tensor allocation registers its byte count with the tracker
 * installed for the current thread. The simulator installs a tracker
 * with the (scaled) device capacity so that workloads which would not
 * fit on the modeled GPU raise OomError exactly where the real system
 * would raise a CUDA out-of-memory error. This is the mechanism behind
 * the paper's OOM columns (Fig. 8, Table 4) and the memory-footprint
 * study (Fig. 10).
 */

#ifndef HECTOR_TENSOR_MEMORY_TRACKER_HH
#define HECTOR_TENSOR_MEMORY_TRACKER_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace hector::tensor
{

/**
 * Thrown when a tracked allocation exceeds the modeled device capacity.
 * Mirrors a CUDA out-of-memory error in the paper's experiments.
 */
class OomError : public std::runtime_error
{
  public:
    OomError(std::size_t requested, std::size_t live, std::size_t capacity)
        : std::runtime_error(
              "simulated device OOM: requested " +
              std::to_string(requested) + " B with " + std::to_string(live) +
              " B live, capacity " + std::to_string(capacity) + " B"),
          requestedBytes(requested), liveBytes(live), capacityBytes(capacity)
    {}

    std::size_t requestedBytes;
    std::size_t liveBytes;
    std::size_t capacityBytes;
};

/**
 * Accounts live and peak bytes of tensor storage and enforces a
 * capacity limit. A capacity of zero means "unlimited" (used by tests
 * and host-side scratch work).
 */
class MemoryTracker
{
  public:
    /** @param capacity_bytes Simulated device capacity; 0 = unlimited. */
    explicit MemoryTracker(std::size_t capacity_bytes = 0)
        : capacityBytes_(capacity_bytes)
    {}

    /**
     * Register an allocation.
     * @throws OomError when the allocation would exceed capacity.
     */
    void
    onAlloc(std::size_t bytes)
    {
        if (capacityBytes_ != 0 && liveBytes_ + bytes > capacityBytes_) {
            ++oomCount_;
            throw OomError(bytes, liveBytes_, capacityBytes_);
        }
        liveBytes_ += bytes;
        totalAllocBytes_ += bytes;
        ++allocCount_;
        if (liveBytes_ > peakBytes_)
            peakBytes_ = liveBytes_;
    }

    /** Register a deallocation. */
    void
    onFree(std::size_t bytes)
    {
        liveBytes_ = bytes > liveBytes_ ? 0 : liveBytes_ - bytes;
    }

    std::size_t liveBytes() const { return liveBytes_; }
    std::size_t peakBytes() const { return peakBytes_; }
    std::size_t totalAllocBytes() const { return totalAllocBytes_; }
    std::size_t allocCount() const { return allocCount_; }
    std::size_t capacityBytes() const { return capacityBytes_; }
    std::size_t oomCount() const { return oomCount_; }

    /** Reset peak/total statistics but keep live accounting intact. */
    void
    resetStats()
    {
        peakBytes_ = liveBytes_;
        totalAllocBytes_ = 0;
        allocCount_ = 0;
        oomCount_ = 0;
    }

  private:
    std::size_t capacityBytes_;
    std::size_t liveBytes_ = 0;
    std::size_t peakBytes_ = 0;
    std::size_t totalAllocBytes_ = 0;
    std::size_t allocCount_ = 0;
    std::size_t oomCount_ = 0;
};

/**
 * Returns the tracker installed for the current thread, or nullptr when
 * allocations are untracked (the default).
 */
MemoryTracker *currentTracker();

/**
 * RAII scope that installs a tracker for the current thread.
 * Non-copyable; nests correctly (restores the previous tracker).
 */
class TrackerScope
{
  public:
    explicit TrackerScope(MemoryTracker *tracker);
    ~TrackerScope();

    TrackerScope(const TrackerScope &) = delete;
    TrackerScope &operator=(const TrackerScope &) = delete;

  private:
    MemoryTracker *prev_;
};

} // namespace hector::tensor

#endif // HECTOR_TENSOR_MEMORY_TRACKER_HH
