/**
 * @file
 * Portable SIMD micro-kernels behind a runtime dispatch shim.
 *
 * The hot inner bodies of the tensor kernels (packed-panel GEMM rows,
 * row axpy, elementwise maps) are one of two shapes:
 *
 *  - axpy family: y[j] (+)= f(x[j]) per output element j. Elements are
 *    independent, so vectorizing the j loop performs exactly one
 *    multiply rounding and one add rounding per element — the same
 *    bits as the scalar loop at every lane width, provided the
 *    compiler never contracts mul+add into an FMA (the build passes
 *    -ffp-contract=off, and the intrinsic paths use explicit mul/add).
 *    These kernels claim BITWISE identity with the seed and are on by
 *    default (HECTOR_SIMD=on).
 *
 *  - reduction family: acc = sum_j a[j]*b[j] (rowDot). Lane partials +
 *    a horizontal reduce re-associate the sum, which changes the bits.
 *    These kernels are gated behind HECTOR_SIMD=fast and carry a
 *    documented tolerance (|err| <= 4 * eps * sum|a[j]*b[j]|) that the
 *    bench and tests enforce; the default mode keeps the seed's
 *    left-to-right scalar order.
 *
 * Dispatch: the best ISA (AVX2 on x86-64 via __builtin_cpu_supports,
 * NEON on aarch64, portable scalar otherwise) is resolved once per
 * process into a function-pointer table; setSimdMode(Off) flips the
 * table back to the scalar reference so benches can measure the scalar
 * blocked baseline in the same binary.
 */

#ifndef HECTOR_TENSOR_SIMD_HH
#define HECTOR_TENSOR_SIMD_HH

#include <cstdint>

namespace hector::tensor::simd
{

/** HECTOR_SIMD modes. */
enum class SimdMode
{
    Off,  ///< scalar reference kernels only
    On,   ///< bitwise-safe vector kernels (default)
    Fast, ///< additionally enable tolerance-class reductions
};

/**
 * Parse a HECTOR_SIMD value. nullptr/empty returns the default (On).
 * Anything else must be exactly "off", "on" or "fast"; malformed
 * values throw std::invalid_argument naming the variable and the
 * offending value — a typo'd mode must fail loudly, not silently
 * serve scalar.
 */
SimdMode parseSimdEnv(const char *value);

/** Active mode: setSimdMode override, else HECTOR_SIMD, else On. */
SimdMode simdMode();

/** Override the mode (benches, tests). Takes effect immediately. */
void setSimdMode(SimdMode mode);

/** Name of the dispatched ISA: "avx2", "neon" or "portable". */
const char *isaName();

/** Lane count of the dispatched ISA (8 for AVX2, 4 for NEON, 1). */
int vectorWidth();

/** True when mode is Fast (tolerance-class reductions active). */
bool fastModeActive();

/**
 * Row x packed-panel micro-kernel — the inner two loops of every
 * blocked GEMM path. For kk in [0, kb): xv = scale * xrow[kk *
 * xstride]; zero xv skipped; y[j] += xv * panel[kk * n + j] for j in
 * [0, n). kk ascends and each output element sees one mul + one add
 * per contribution: bit-identical to the seed order at any lane
 * width.
 */
void rowPanel(float *y, const float *xrow, std::int64_t xstride,
              float scale, const float *panel, std::int64_t kb,
              std::int64_t n);

/**
 * rowPanel with a forced vector width from a GemmSchedule: 0 = the
 * dispatched default, 1 = scalar, otherwise the requested lane count
 * when the dispatched ISA provides it (falls back to the default
 * path; results are bit-identical either way, only speed differs).
 */
void rowPanelWith(int vec_width, float *y, const float *xrow,
                  std::int64_t xstride, float scale, const float *panel,
                  std::int64_t kb, std::int64_t n);

/** y[j] += a * x[j] (bitwise-safe). */
void axpyRange(float *y, float a, const float *x, std::int64_t n);

/** y[j] += x[j] (bitwise-safe). */
void addRange(float *y, const float *x, std::int64_t n);

/** y[j] *= x[j] (bitwise-safe). */
void mulRange(float *y, const float *x, std::int64_t n);

/** y[j] *= a (bitwise-safe). */
void scaleRange(float *y, float a, std::int64_t n);

/** y[j] = y[j] > 0 ? y[j] : 0 (bitwise-safe). */
void reluRange(float *y, std::int64_t n);

/** y[j] = y[j] > 0 ? y[j] : slope * y[j] (bitwise-safe). */
void leakyReluRange(float *y, float slope, std::int64_t n);

/** dy[j] *= x[j] > 0 ? 1 : slope (bitwise-safe). */
void leakyReluBackwardRange(float *dy, const float *x, float slope,
                            std::int64_t n);

/**
 * Tolerance-class dot product: lane partials + horizontal reduce.
 * Documented bound vs the seed's left-to-right order:
 * |fast - seed| <= 4 * eps * sum_j |a[j] * b[j]|. Only reachable in
 * Fast mode; callers in On mode keep the scalar reference.
 */
float dotFast(const float *a, const float *b, std::int64_t n);

} // namespace hector::tensor::simd

#endif // HECTOR_TENSOR_SIMD_HH
