/**
 * @file
 * Shared machinery of the cache-blocked GEMM paths.
 *
 * Both the reference kernels (tensor/ops.cc) and the executor's
 * interpreted GEMM instances (core/executor.cc) tile the k dimension
 * in kBlockK chunks and stream rows over a packed, contiguous panel of
 * op(W). The block size, the per-thread panel buffer, the packing
 * routine, and the dispatch-grain formula live here so the two users
 * cannot drift apart — the bit-exactness argument (per output element,
 * kk blocks visited in ascending order with kk ascending inside each
 * block, zero x-values skipped) depends on every user tiling the same
 * way.
 */

#ifndef HECTOR_TENSOR_BLOCK_KERNELS_HH
#define HECTOR_TENSOR_BLOCK_KERNELS_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

namespace hector::tensor::blocked
{

/**
 * k-dimension block of the cache-blocked GEMM paths. A packed panel is
 * kBlockK x n floats (16 KB at n = 64), sized to stay resident in
 * L1/L2 while every row of an i-range streams over it.
 */
inline constexpr std::int64_t kBlockK = 64;

/**
 * k-block a GEMM schedule maps to on the host execution engine: the
 * tile edge times the per-thread coarsening factor, scaled so the
 * default schedule (tileSz 16, coarsening 1) lands exactly on the
 * historical kBlockK. Changing the block size never changes results —
 * per output element the kk chunks are visited in ascending order with
 * kk ascending inside each chunk, so the accumulation order is the
 * seed's regardless of where the chunk boundaries fall — it only moves
 * the working-set/packing trade-off the autotuner measures.
 */
inline std::int64_t
kBlockFor(int tile_sz, int coarsening)
{
    const std::int64_t blk = static_cast<std::int64_t>(tile_sz) * 4 *
                             std::max(1, coarsening);
    return std::clamp<std::int64_t>(blk, 16, 256);
}

/** Per-thread packed-weight panel, reused across kernels/launches. */
inline std::vector<float> &
panelBuffer()
{
    static thread_local std::vector<float> buf;
    return buf;
}

/** The panel buffer, grown to hold @p kb x n floats. */
inline float *
panelFor(std::int64_t kb, std::int64_t n)
{
    std::vector<float> &panel = panelBuffer();
    if (panel.size() < static_cast<std::size_t>(kb * n))
        panel.resize(static_cast<std::size_t>(kb * n));
    return panel.data();
}

/** The panel buffer at the default kBlockK block (tensor/ops.cc). */
inline float *
panelFor(std::int64_t n)
{
    return panelFor(kBlockK, n);
}

/**
 * Pack rows [k0, k0+kb) of op(W) into @p panel, kk-major and
 * contiguous: panel[kk * n + j] = op(W)[k0 + kk][j].
 *
 * @param w    weight slice base
 * @param ld   leading dimension (stride between stored rows of w)
 * @param trans when true, op(W)[kk][j] = w[j * ld + kk] (transposed
 *             use, packed into contiguous form)
 */
inline void
packPanel(const float *w, std::int64_t ld, bool trans, std::int64_t k0,
          std::int64_t kb, std::int64_t n, float *panel)
{
    for (std::int64_t kk = 0; kk < kb; ++kk) {
        float *prow = panel + kk * n;
        if (!trans) {
            std::memcpy(prow, w + (k0 + kk) * ld,
                        static_cast<std::size_t>(n) * sizeof(float));
        } else {
            for (std::int64_t j = 0; j < n; ++j)
                prow[j] = w[j * ld + (k0 + kk)];
        }
    }
}

/** Row grain that amortizes one pool dispatch against ~64k FLOPs. */
inline std::int64_t
rowGrain(std::int64_t k, std::int64_t n)
{
    const std::int64_t work = std::max<std::int64_t>(1, 2 * k * n);
    return std::max<std::int64_t>(4, 32768 / work);
}

} // namespace hector::tensor::blocked

#endif // HECTOR_TENSOR_BLOCK_KERNELS_HH
