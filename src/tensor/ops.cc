#include "tensor/ops.hh"

#include <cmath>
#include <cstring>

namespace hector::tensor
{

namespace
{

/**
 * Inner GEMM over raw pointers with an ikj loop order so the innermost
 * loop streams both W and Y rows (keeps the CPU reference fast enough
 * for the full benchmark sweeps).
 */
void
gemmRaw(const float *x, const float *w, float *y, std::int64_t m,
        std::int64_t n, std::int64_t k, bool trans_x, bool trans_w,
        float alpha, float beta)
{
    for (std::int64_t i = 0; i < m; ++i) {
        float *yrow = y + i * n;
        if (beta == 0.0f) {
            std::memset(yrow, 0, static_cast<std::size_t>(n) * sizeof(float));
        } else if (beta != 1.0f) {
            for (std::int64_t j = 0; j < n; ++j)
                yrow[j] *= beta;
        }
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float xv = alpha *
                (trans_x ? x[kk * m + i] : x[i * k + kk]);
            if (xv == 0.0f)
                continue;
            if (!trans_w) {
                const float *wrow = w + kk * n;
                for (std::int64_t j = 0; j < n; ++j)
                    yrow[j] += xv * wrow[j];
            } else {
                for (std::int64_t j = 0; j < n; ++j)
                    yrow[j] += xv * w[j * k + kk];
            }
        }
    }
}

} // namespace

void
gemm(const Tensor &x, const Tensor &w, Tensor &y, bool trans_x, bool trans_w,
     float alpha, float beta)
{
    checkThat(x.ndim() == 2 && w.ndim() == 2 && y.ndim() == 2,
              "gemm expects rank-2 operands");
    const std::int64_t m = trans_x ? x.dim(1) : x.dim(0);
    const std::int64_t k = trans_x ? x.dim(0) : x.dim(1);
    const std::int64_t kw = trans_w ? w.dim(1) : w.dim(0);
    const std::int64_t n = trans_w ? w.dim(0) : w.dim(1);
    checkThat(k == kw, "gemm: inner dimensions disagree");
    checkThat(y.dim(0) == m && y.dim(1) == n, "gemm: bad output shape");
    gemmRaw(x.data(), w.data(), y.data(), m, n, k, trans_x, trans_w, alpha,
            beta);
}

void
bmm(const Tensor &x, const Tensor &w, Tensor &y)
{
    checkThat(x.ndim() == 3 && w.ndim() == 3 && y.ndim() == 3,
              "bmm expects rank-3 operands");
    const std::int64_t b = x.dim(0);
    checkThat(w.dim(0) == b && y.dim(0) == b, "bmm: batch mismatch");
    const std::int64_t m = x.dim(1);
    const std::int64_t k = x.dim(2);
    const std::int64_t n = w.dim(2);
    checkThat(w.dim(1) == k && y.dim(1) == m && y.dim(2) == n,
              "bmm: bad shapes");
    for (std::int64_t i = 0; i < b; ++i) {
        gemmRaw(x.data() + i * m * k, w.data() + i * k * n,
                y.data() + i * m * n, m, n, k, false, false, 1.0f, 0.0f);
    }
}

void
segmentMm(const Tensor &x, const Tensor &w, Tensor &y,
          std::span<const std::int64_t> seg_ptr)
{
    checkThat(x.ndim() == 2 && w.ndim() == 3 && y.ndim() == 2,
              "segmentMm: bad ranks");
    const std::int64_t t = w.dim(0);
    checkThat(static_cast<std::int64_t>(seg_ptr.size()) == t + 1,
              "segmentMm: seg_ptr size must be T+1");
    const std::int64_t k = w.dim(1);
    const std::int64_t n = w.dim(2);
    checkThat(x.dim(1) == k && y.dim(1) == n, "segmentMm: dim mismatch");
    checkThat(seg_ptr[static_cast<std::size_t>(t)] == x.dim(0),
              "segmentMm: seg_ptr does not cover all rows");
    for (std::int64_t s = 0; s < t; ++s) {
        const std::int64_t lo = seg_ptr[static_cast<std::size_t>(s)];
        const std::int64_t hi = seg_ptr[static_cast<std::size_t>(s) + 1];
        if (hi == lo)
            continue;
        gemmRaw(x.data() + lo * k, w.data() + s * k * n, y.data() + lo * n,
                hi - lo, n, k, false, false, 1.0f, 0.0f);
    }
}

void
gatherSegmentMm(const Tensor &x, const Tensor &w, Tensor &y,
                std::span<const std::int64_t> seg_ptr,
                std::span<const std::int64_t> gather,
                std::span<const std::int64_t> scatter, bool accumulate,
                bool trans_w)
{
    checkThat(x.ndim() == 2 && w.ndim() == 3 && y.ndim() == 2,
              "gatherSegmentMm: bad ranks");
    const std::int64_t t = w.dim(0);
    checkThat(static_cast<std::int64_t>(seg_ptr.size()) == t + 1,
              "gatherSegmentMm: seg_ptr size must be T+1");
    const std::int64_t k = trans_w ? w.dim(2) : w.dim(1);
    const std::int64_t n = trans_w ? w.dim(1) : w.dim(2);
    checkThat(x.dim(1) == k && y.dim(1) == n,
              "gatherSegmentMm: dim mismatch");
    for (std::int64_t s = 0; s < t; ++s) {
        const std::int64_t lo = seg_ptr[static_cast<std::size_t>(s)];
        const std::int64_t hi = seg_ptr[static_cast<std::size_t>(s) + 1];
        const float *wt = w.data() + s * w.dim(1) * w.dim(2);
        for (std::int64_t r = lo; r < hi; ++r) {
            const std::int64_t xr =
                gather.empty() ? r : gather[static_cast<std::size_t>(r)];
            const std::int64_t yr =
                scatter.empty() ? r : scatter[static_cast<std::size_t>(r)];
            const float *xrow = x.data() + xr * k;
            float *yrow = y.data() + yr * n;
            if (!accumulate)
                std::memset(yrow, 0,
                            static_cast<std::size_t>(n) * sizeof(float));
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float xv = xrow[kk];
                if (xv == 0.0f)
                    continue;
                if (!trans_w) {
                    const float *wrow = wt + kk * n;
                    for (std::int64_t j = 0; j < n; ++j)
                        yrow[j] += xv * wrow[j];
                } else {
                    for (std::int64_t j = 0; j < n; ++j)
                        yrow[j] += xv * wt[j * k + kk];
                }
            }
        }
    }
}

void
segmentOuterProduct(const Tensor &x, const Tensor &y, Tensor &dw,
                    std::span<const std::int64_t> seg_ptr,
                    std::span<const std::int64_t> gather_x,
                    std::span<const std::int64_t> gather_y)
{
    checkThat(x.ndim() == 2 && y.ndim() == 2 && dw.ndim() == 3,
              "segmentOuterProduct: bad ranks");
    const std::int64_t t = dw.dim(0);
    const std::int64_t k = dw.dim(1);
    const std::int64_t n = dw.dim(2);
    checkThat(x.dim(1) == k && y.dim(1) == n,
              "segmentOuterProduct: dim mismatch");
    checkThat(static_cast<std::int64_t>(seg_ptr.size()) == t + 1,
              "segmentOuterProduct: seg_ptr size must be T+1");
    for (std::int64_t s = 0; s < t; ++s) {
        const std::int64_t lo = seg_ptr[static_cast<std::size_t>(s)];
        const std::int64_t hi = seg_ptr[static_cast<std::size_t>(s) + 1];
        float *dwt = dw.data() + s * k * n;
        for (std::int64_t r = lo; r < hi; ++r) {
            const std::int64_t xr =
                gather_x.empty() ? r : gather_x[static_cast<std::size_t>(r)];
            const std::int64_t yr =
                gather_y.empty() ? r : gather_y[static_cast<std::size_t>(r)];
            const float *xrow = x.data() + xr * k;
            const float *yrow = y.data() + yr * n;
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float xv = xrow[kk];
                if (xv == 0.0f)
                    continue;
                float *dwrow = dwt + kk * n;
                for (std::int64_t j = 0; j < n; ++j)
                    dwrow[j] += xv * yrow[j];
            }
        }
    }
}

void
gatherRows(const Tensor &x, Tensor &y, std::span<const std::int64_t> gather)
{
    checkThat(x.ndim() == 2 && y.ndim() == 2 && x.dim(1) == y.dim(1),
              "gatherRows: bad shapes");
    checkThat(static_cast<std::int64_t>(gather.size()) == y.dim(0),
              "gatherRows: index count mismatch");
    const std::int64_t cols = x.dim(1);
    for (std::size_t i = 0; i < gather.size(); ++i) {
        std::memcpy(y.data() + static_cast<std::int64_t>(i) * cols,
                    x.data() + gather[i] * cols,
                    static_cast<std::size_t>(cols) * sizeof(float));
    }
}

void
scatterAddRows(const Tensor &x, Tensor &y,
               std::span<const std::int64_t> scatter)
{
    checkThat(x.ndim() == 2 && y.ndim() == 2 && x.dim(1) == y.dim(1),
              "scatterAddRows: bad shapes");
    checkThat(static_cast<std::int64_t>(scatter.size()) == x.dim(0),
              "scatterAddRows: index count mismatch");
    const std::int64_t cols = x.dim(1);
    for (std::size_t i = 0; i < scatter.size(); ++i) {
        const float *src = x.data() + static_cast<std::int64_t>(i) * cols;
        float *dst = y.data() + scatter[i] * cols;
        for (std::int64_t j = 0; j < cols; ++j)
            dst[j] += src[j];
    }
}

void
addInPlace(Tensor &y, const Tensor &x)
{
    checkThat(y.numel() == x.numel(), "addInPlace: size mismatch");
    float *py = y.data();
    const float *px = x.data();
    for (std::size_t i = 0; i < y.numel(); ++i)
        py[i] += px[i];
}

void
mulInPlace(Tensor &y, const Tensor &x)
{
    checkThat(y.numel() == x.numel(), "mulInPlace: size mismatch");
    float *py = y.data();
    const float *px = x.data();
    for (std::size_t i = 0; i < y.numel(); ++i)
        py[i] *= px[i];
}

void
scaleInPlace(Tensor &y, float alpha)
{
    float *py = y.data();
    for (std::size_t i = 0; i < y.numel(); ++i)
        py[i] *= alpha;
}

void
expInPlace(Tensor &y)
{
    float *py = y.data();
    for (std::size_t i = 0; i < y.numel(); ++i)
        py[i] = std::exp(py[i]);
}

void
leakyReluInPlace(Tensor &y, float slope)
{
    float *py = y.data();
    for (std::size_t i = 0; i < y.numel(); ++i)
        py[i] = py[i] > 0.0f ? py[i] : slope * py[i];
}

void
reluInPlace(Tensor &y)
{
    float *py = y.data();
    for (std::size_t i = 0; i < y.numel(); ++i)
        py[i] = py[i] > 0.0f ? py[i] : 0.0f;
}

void
leakyReluBackwardInPlace(Tensor &dy, const Tensor &x, float slope)
{
    checkThat(dy.numel() == x.numel(), "leakyReluBackward: size mismatch");
    float *pd = dy.data();
    const float *px = x.data();
    for (std::size_t i = 0; i < dy.numel(); ++i)
        pd[i] *= px[i] > 0.0f ? 1.0f : slope;
}

void
rowDot(const Tensor &a, const Tensor &b, Tensor &out)
{
    checkThat(a.ndim() == 2 && b.ndim() == 2 && out.ndim() == 1,
              "rowDot: bad ranks");
    checkThat(a.dim(0) == b.dim(0) && a.dim(1) == b.dim(1) &&
                  out.dim(0) == a.dim(0),
              "rowDot: shape mismatch");
    const std::int64_t cols = a.dim(1);
    for (std::int64_t i = 0; i < a.dim(0); ++i) {
        const float *pa = a.data() + i * cols;
        const float *pb = b.data() + i * cols;
        float acc = 0.0f;
        for (std::int64_t j = 0; j < cols; ++j)
            acc += pa[j] * pb[j];
        out.data()[i] = acc;
    }
}

void
rowAxpy(const Tensor &alpha, const Tensor &x, Tensor &y)
{
    checkThat(alpha.ndim() == 1 && x.ndim() == 2 && y.ndim() == 2,
              "rowAxpy: bad ranks");
    checkThat(alpha.dim(0) == x.dim(0) && x.shape() == y.shape(),
              "rowAxpy: shape mismatch");
    const std::int64_t cols = x.dim(1);
    for (std::int64_t i = 0; i < x.dim(0); ++i) {
        const float a = alpha.data()[i];
        const float *px = x.data() + i * cols;
        float *py = y.data() + i * cols;
        for (std::int64_t j = 0; j < cols; ++j)
            py[j] += a * px[j];
    }
}

double
sum(const Tensor &t)
{
    double acc = 0.0;
    const float *p = t.data();
    for (std::size_t i = 0; i < t.numel(); ++i)
        acc += p[i];
    return acc;
}

} // namespace hector::tensor
