#include "tensor/ops.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/block_kernels.hh"
#include "tensor/simd.hh"
#include "util/thread_pool.hh"

namespace hector::tensor
{

namespace
{

using blocked::kBlockK;
using blocked::packPanel;
using blocked::panelFor;
using blocked::rowGrain;

/**
 * Seed reference GEMM over raw pointers with an ikj loop order so the
 * innermost loop streams both W and Y rows. This is the accumulation
 * order every optimized path below must reproduce bit for bit: for a
 * fixed output element (i, j), contributions arrive in ascending kk
 * order, and zero x-values are skipped entirely.
 */
void
gemmRowsSeed(const float *x, const float *w, float *y, std::int64_t m,
             std::int64_t n, std::int64_t k, bool trans_x, bool trans_w,
             float alpha, float beta, std::int64_t r0, std::int64_t r1)
{
    for (std::int64_t i = r0; i < r1; ++i) {
        float *yrow = y + i * n;
        if (beta == 0.0f) {
            std::memset(yrow, 0, static_cast<std::size_t>(n) * sizeof(float));
        } else if (beta != 1.0f) {
            for (std::int64_t j = 0; j < n; ++j)
                yrow[j] *= beta;
        }
        for (std::int64_t kk = 0; kk < k; ++kk) {
            const float xv = alpha *
                (trans_x ? x[kk * m + i] : x[i * k + kk]);
            if (xv == 0.0f)
                continue;
            if (!trans_w) {
                const float *wrow = w + kk * n;
                for (std::int64_t j = 0; j < n; ++j)
                    yrow[j] += xv * wrow[j];
            } else {
                for (std::int64_t j = 0; j < n; ++j)
                    yrow[j] += xv * w[j * k + kk];
            }
        }
    }
}

/**
 * Cache-blocked GEMM over rows [r0, r1): k is tiled in kBlockK chunks,
 * op(W)'s chunk is packed once into a contiguous kk-major panel, and
 * every row of the range streams over the resident panel. Per output
 * element the kk blocks are visited in ascending order and kk ascends
 * inside each block, so the floating-point accumulation order — and
 * the skip of zero x-values — is exactly gemmRowsSeed's.
 */
void
gemmRowsBlocked(const float *x, const float *w, float *y, std::int64_t m,
                std::int64_t n, std::int64_t k, bool trans_x, bool trans_w,
                float alpha, float beta, std::int64_t r0, std::int64_t r1)
{
    if (r1 <= r0)
        return;
    // Packing a panel costs ~k*n float moves; below a handful of rows
    // the direct (seed-order) loop is cheaper and bit-identical.
    if (r1 - r0 < 4 || n == 0 || k == 0) {
        gemmRowsSeed(x, w, y, m, n, k, trans_x, trans_w, alpha, beta, r0,
                     r1);
        return;
    }

    for (std::int64_t i = r0; i < r1; ++i) {
        float *yrow = y + i * n;
        if (beta == 0.0f) {
            std::memset(yrow, 0, static_cast<std::size_t>(n) * sizeof(float));
        } else if (beta != 1.0f) {
            for (std::int64_t j = 0; j < n; ++j)
                yrow[j] *= beta;
        }
    }

    float *panel = panelFor(n);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t kb = std::min(kBlockK, k - k0);
        packPanel(w, trans_w ? k : n, trans_w, k0, kb, n, panel);
        for (std::int64_t i = r0; i < r1; ++i) {
            // The x chunk walks kk with stride 1 (row-major x) or
            // stride m (transposed x); the SIMD micro-kernel keeps
            // the seed's kk-ascending, zero-skipping order either way.
            const float *xrow =
                trans_x ? x + k0 * m + i : x + i * k + k0;
            simd::rowPanel(y + i * n, xrow, trans_x ? m : 1, alpha,
                           panel, kb, n);
        }
    }
}

} // namespace

void
gemm(const Tensor &x, const Tensor &w, Tensor &y, bool trans_x, bool trans_w,
     float alpha, float beta)
{
    checkThat(x.ndim() == 2 && w.ndim() == 2 && y.ndim() == 2,
              "gemm expects rank-2 operands");
    const std::int64_t m = trans_x ? x.dim(1) : x.dim(0);
    const std::int64_t k = trans_x ? x.dim(0) : x.dim(1);
    const std::int64_t kw = trans_w ? w.dim(1) : w.dim(0);
    const std::int64_t n = trans_w ? w.dim(0) : w.dim(1);
    checkThat(k == kw, "gemm: inner dimensions disagree");
    checkThat(y.dim(0) == m && y.dim(1) == n, "gemm: bad output shape");
    if (util::seedKernelMode()) {
        gemmRowsSeed(x.data(), w.data(), y.data(), m, n, k, trans_x,
                     trans_w, alpha, beta, 0, m);
        return;
    }
    util::globalPool().parallelFor(
        0, m,
        [&](std::int64_t r0, std::int64_t r1) {
            gemmRowsBlocked(x.data(), w.data(), y.data(), m, n, k, trans_x,
                            trans_w, alpha, beta, r0, r1);
        },
        rowGrain(k, n));
}

void
bmm(const Tensor &x, const Tensor &w, Tensor &y)
{
    checkThat(x.ndim() == 3 && w.ndim() == 3 && y.ndim() == 3,
              "bmm expects rank-3 operands");
    const std::int64_t b = x.dim(0);
    checkThat(w.dim(0) == b && y.dim(0) == b, "bmm: batch mismatch");
    const std::int64_t m = x.dim(1);
    const std::int64_t k = x.dim(2);
    const std::int64_t n = w.dim(2);
    checkThat(w.dim(1) == k && y.dim(1) == m && y.dim(2) == n,
              "bmm: bad shapes");
    if (util::seedKernelMode()) {
        for (std::int64_t i = 0; i < b; ++i)
            gemmRowsSeed(x.data() + i * m * k, w.data() + i * k * n,
                         y.data() + i * m * n, m, n, k, false, false, 1.0f,
                         0.0f, 0, m);
        return;
    }
    // Parallelize over the flattened (batch, row) index space so small
    // batches of tall matrices and large batches of small ones both
    // split evenly; each global row is owned by exactly one thread.
    util::globalPool().parallelFor(
        0, b * m,
        [&](std::int64_t lo, std::int64_t hi) {
            std::int64_t g = lo;
            while (g < hi) {
                const std::int64_t bi = g / m;
                const std::int64_t r0 = g - bi * m;
                const std::int64_t r1 = std::min(m, r0 + (hi - g));
                gemmRowsBlocked(x.data() + bi * m * k,
                                w.data() + bi * k * n,
                                y.data() + bi * m * n, m, n, k, false,
                                false, 1.0f, 0.0f, r0, r1);
                g += r1 - r0;
            }
        },
        rowGrain(k, n));
}

void
segmentMm(const Tensor &x, const Tensor &w, Tensor &y,
          std::span<const std::int64_t> seg_ptr)
{
    checkThat(x.ndim() == 2 && w.ndim() == 3 && y.ndim() == 2,
              "segmentMm: bad ranks");
    const std::int64_t t = w.dim(0);
    checkThat(static_cast<std::int64_t>(seg_ptr.size()) == t + 1,
              "segmentMm: seg_ptr size must be T+1");
    const std::int64_t k = w.dim(1);
    const std::int64_t n = w.dim(2);
    checkThat(x.dim(1) == k && y.dim(1) == n, "segmentMm: dim mismatch");
    checkThat(seg_ptr[static_cast<std::size_t>(t)] == x.dim(0),
              "segmentMm: seg_ptr does not cover all rows");

    auto runRange = [&](std::int64_t lo, std::int64_t hi, bool blocked) {
        // Locate the first segment overlapping [lo, hi) and walk on.
        std::int64_t s = 0;
        while (s < t && seg_ptr[static_cast<std::size_t>(s) + 1] <= lo)
            ++s;
        for (; s < t && seg_ptr[static_cast<std::size_t>(s)] < hi; ++s) {
            const std::int64_t r0 =
                std::max(lo, seg_ptr[static_cast<std::size_t>(s)]);
            const std::int64_t r1 =
                std::min(hi, seg_ptr[static_cast<std::size_t>(s) + 1]);
            if (r1 <= r0)
                continue;
            const float *xs =
                x.data() + seg_ptr[static_cast<std::size_t>(s)] * k;
            float *ys = y.data() + seg_ptr[static_cast<std::size_t>(s)] * n;
            const std::int64_t base = seg_ptr[static_cast<std::size_t>(s)];
            const std::int64_t rows =
                seg_ptr[static_cast<std::size_t>(s) + 1] - base;
            if (blocked)
                gemmRowsBlocked(xs, w.data() + s * k * n, ys, rows, n, k,
                                false, false, 1.0f, 0.0f, r0 - base,
                                r1 - base);
            else
                gemmRowsSeed(xs, w.data() + s * k * n, ys, rows, n, k,
                             false, false, 1.0f, 0.0f, r0 - base,
                             r1 - base);
        }
    };

    if (util::seedKernelMode()) {
        runRange(0, x.dim(0), false);
        return;
    }
    util::globalPool().parallelFor(
        0, x.dim(0),
        [&](std::int64_t lo, std::int64_t hi) { runRange(lo, hi, true); },
        rowGrain(k, n));
}

namespace
{

/**
 * Rows [r0, r1) of a gathered segment MM with identity scatter (the
 * parallel-safe case: output row r is written only by the thread that
 * owns r). Blocked like gemmRowsBlocked, with the x row indirected
 * through the gather list; accumulation order per output element is
 * the seed loop's (kk ascending, zero x skipped).
 */
void
gatherSegRowsBlocked(const float *x, const float *wt, float *y,
                     std::int64_t n, std::int64_t k,
                     std::span<const std::int64_t> gather, bool accumulate,
                     bool trans_w, std::int64_t r0, std::int64_t r1)
{
    if (r1 <= r0)
        return;
    float *panel = panelFor(n);
    if (!accumulate) {
        for (std::int64_t r = r0; r < r1; ++r)
            std::memset(y + r * n, 0,
                        static_cast<std::size_t>(n) * sizeof(float));
    }
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::int64_t kb = std::min(kBlockK, k - k0);
        packPanel(wt, trans_w ? k : n, trans_w, k0, kb, n, panel);
        for (std::int64_t r = r0; r < r1; ++r) {
            const std::int64_t xr =
                gather.empty() ? r : gather[static_cast<std::size_t>(r)];
            simd::rowPanel(y + r * n, x + xr * k + k0, 1, 1.0f, panel,
                           kb, n);
        }
    }
}

} // namespace

void
gatherSegmentMm(const Tensor &x, const Tensor &w, Tensor &y,
                std::span<const std::int64_t> seg_ptr,
                std::span<const std::int64_t> gather,
                std::span<const std::int64_t> scatter, bool accumulate,
                bool trans_w)
{
    checkThat(x.ndim() == 2 && w.ndim() == 3 && y.ndim() == 2,
              "gatherSegmentMm: bad ranks");
    const std::int64_t t = w.dim(0);
    checkThat(static_cast<std::int64_t>(seg_ptr.size()) == t + 1,
              "gatherSegmentMm: seg_ptr size must be T+1");
    const std::int64_t k = trans_w ? w.dim(2) : w.dim(1);
    const std::int64_t n = trans_w ? w.dim(1) : w.dim(2);
    checkThat(x.dim(1) == k && y.dim(1) == n,
              "gatherSegmentMm: dim mismatch");

    // With a scatter list, distinct virtual rows may target the same
    // output row; parallel row ownership would break and reordering
    // the colliding accumulations would change the bits. Keep the
    // seed's sequential loop for that case.
    const bool row_parallel = scatter.empty() && !util::seedKernelMode();

    auto seedRows = [&](std::int64_t s, std::int64_t lo, std::int64_t hi) {
        const float *wt = w.data() + s * w.dim(1) * w.dim(2);
        for (std::int64_t r = lo; r < hi; ++r) {
            const std::int64_t xr =
                gather.empty() ? r : gather[static_cast<std::size_t>(r)];
            const std::int64_t yr =
                scatter.empty() ? r : scatter[static_cast<std::size_t>(r)];
            const float *xrow = x.data() + xr * k;
            float *yrow = y.data() + yr * n;
            if (!accumulate)
                std::memset(yrow, 0,
                            static_cast<std::size_t>(n) * sizeof(float));
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float xv = xrow[kk];
                if (xv == 0.0f)
                    continue;
                if (!trans_w) {
                    const float *wrow = wt + kk * n;
                    for (std::int64_t j = 0; j < n; ++j)
                        yrow[j] += xv * wrow[j];
                } else {
                    for (std::int64_t j = 0; j < n; ++j)
                        yrow[j] += xv * wt[j * k + kk];
                }
            }
        }
    };

    if (!row_parallel) {
        for (std::int64_t s = 0; s < t; ++s)
            seedRows(s, seg_ptr[static_cast<std::size_t>(s)],
                     seg_ptr[static_cast<std::size_t>(s) + 1]);
        return;
    }

    const std::int64_t total = seg_ptr[static_cast<std::size_t>(t)];
    util::globalPool().parallelFor(
        0, total,
        [&](std::int64_t lo, std::int64_t hi) {
            std::int64_t s = 0;
            while (s < t && seg_ptr[static_cast<std::size_t>(s) + 1] <= lo)
                ++s;
            for (; s < t && seg_ptr[static_cast<std::size_t>(s)] < hi;
                 ++s) {
                const std::int64_t r0 =
                    std::max(lo, seg_ptr[static_cast<std::size_t>(s)]);
                const std::int64_t r1 = std::min(
                    hi, seg_ptr[static_cast<std::size_t>(s) + 1]);
                if (r1 <= r0)
                    continue;
                if (r1 - r0 < 4) {
                    seedRows(s, r0, r1);
                    continue;
                }
                gatherSegRowsBlocked(
                    x.data(), w.data() + s * w.dim(1) * w.dim(2), y.data(),
                    n, k, gather, accumulate, trans_w, r0, r1);
            }
        },
        rowGrain(k, n));
}

void
segmentOuterProduct(const Tensor &x, const Tensor &y, Tensor &dw,
                    std::span<const std::int64_t> seg_ptr,
                    std::span<const std::int64_t> gather_x,
                    std::span<const std::int64_t> gather_y)
{
    checkThat(x.ndim() == 2 && y.ndim() == 2 && dw.ndim() == 3,
              "segmentOuterProduct: bad ranks");
    const std::int64_t t = dw.dim(0);
    const std::int64_t k = dw.dim(1);
    const std::int64_t n = dw.dim(2);
    checkThat(x.dim(1) == k && y.dim(1) == n,
              "segmentOuterProduct: dim mismatch");
    checkThat(static_cast<std::int64_t>(seg_ptr.size()) == t + 1,
              "segmentOuterProduct: seg_ptr size must be T+1");
    // Every row of a segment accumulates into the same dW[t] slice, so
    // the reduction stays sequential to keep its deterministic order.
    for (std::int64_t s = 0; s < t; ++s) {
        const std::int64_t lo = seg_ptr[static_cast<std::size_t>(s)];
        const std::int64_t hi = seg_ptr[static_cast<std::size_t>(s) + 1];
        float *dwt = dw.data() + s * k * n;
        for (std::int64_t r = lo; r < hi; ++r) {
            const std::int64_t xr =
                gather_x.empty() ? r : gather_x[static_cast<std::size_t>(r)];
            const std::int64_t yr =
                gather_y.empty() ? r : gather_y[static_cast<std::size_t>(r)];
            const float *xrow = x.data() + xr * k;
            const float *yrow = y.data() + yr * n;
            for (std::int64_t kk = 0; kk < k; ++kk) {
                const float xv = xrow[kk];
                if (xv == 0.0f)
                    continue;
                float *dwrow = dwt + kk * n;
                for (std::int64_t j = 0; j < n; ++j)
                    dwrow[j] += xv * yrow[j];
            }
        }
    }
}

void
gatherRows(const Tensor &x, Tensor &y, std::span<const std::int64_t> gather)
{
    checkThat(x.ndim() == 2 && y.ndim() == 2 && x.dim(1) == y.dim(1),
              "gatherRows: bad shapes");
    checkThat(static_cast<std::int64_t>(gather.size()) == y.dim(0),
              "gatherRows: index count mismatch");
    const std::int64_t cols = x.dim(1);
    auto run = [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
            std::memcpy(y.data() + i * cols,
                        x.data() + gather[static_cast<std::size_t>(i)] *
                            cols,
                        static_cast<std::size_t>(cols) * sizeof(float));
    };
    if (util::seedKernelMode()) {
        run(0, y.dim(0));
        return;
    }
    util::globalPool().parallelFor(0, y.dim(0), run,
                                   std::max<std::int64_t>(
                                       16, 8192 / std::max<std::int64_t>(
                                                      1, cols)));
}

void
scatterAddRows(const Tensor &x, Tensor &y,
               std::span<const std::int64_t> scatter)
{
    checkThat(x.ndim() == 2 && y.ndim() == 2 && x.dim(1) == y.dim(1),
              "scatterAddRows: bad shapes");
    checkThat(static_cast<std::int64_t>(scatter.size()) == x.dim(0),
              "scatterAddRows: index count mismatch");
    // Scatter targets may collide; sequential keeps the deterministic
    // accumulation order.
    const std::int64_t cols = x.dim(1);
    for (std::size_t i = 0; i < scatter.size(); ++i) {
        const float *src = x.data() + static_cast<std::int64_t>(i) * cols;
        float *dst = y.data() + scatter[i] * cols;
        for (std::int64_t j = 0; j < cols; ++j)
            dst[j] += src[j];
    }
}

namespace
{

/**
 * Elementwise map over [0, numel) with one owner per index. Seed mode
 * runs @p seed_fn — the literal scalar loop that is the bitwise
 * oracle — over the whole range; otherwise @p fn (typically a SIMD
 * range kernel computing identical bits per element) runs partitioned
 * over the pool.
 */
template <typename Seed, typename Fn>
void
elementwise(std::size_t numel, Seed &&seed_fn, Fn &&fn)
{
    if (util::seedKernelMode()) {
        seed_fn(0, static_cast<std::int64_t>(numel));
        return;
    }
    util::globalPool().parallelFor(0, static_cast<std::int64_t>(numel),
                                   fn, 4096);
}

} // namespace

void
addInPlace(Tensor &y, const Tensor &x)
{
    checkThat(y.numel() == x.numel(), "addInPlace: size mismatch");
    float *py = y.data();
    const float *px = x.data();
    elementwise(
        y.numel(),
        [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
                py[i] += px[i];
        },
        [&](std::int64_t lo, std::int64_t hi) {
            simd::addRange(py + lo, px + lo, hi - lo);
        });
}

void
mulInPlace(Tensor &y, const Tensor &x)
{
    checkThat(y.numel() == x.numel(), "mulInPlace: size mismatch");
    float *py = y.data();
    const float *px = x.data();
    elementwise(
        y.numel(),
        [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
                py[i] *= px[i];
        },
        [&](std::int64_t lo, std::int64_t hi) {
            simd::mulRange(py + lo, px + lo, hi - lo);
        });
}

void
scaleInPlace(Tensor &y, float alpha)
{
    float *py = y.data();
    elementwise(
        y.numel(),
        [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
                py[i] *= alpha;
        },
        [&](std::int64_t lo, std::int64_t hi) {
            simd::scaleRange(py + lo, alpha, hi - lo);
        });
}

void
expInPlace(Tensor &y)
{
    // std::exp has no vector form with guaranteed identical rounding;
    // both paths keep the scalar libm call per element.
    float *py = y.data();
    auto body = [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i)
            py[i] = std::exp(py[i]);
    };
    elementwise(y.numel(), body, body);
}

void
leakyReluInPlace(Tensor &y, float slope)
{
    float *py = y.data();
    elementwise(
        y.numel(),
        [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
                py[i] = py[i] > 0.0f ? py[i] : slope * py[i];
        },
        [&](std::int64_t lo, std::int64_t hi) {
            simd::leakyReluRange(py + lo, slope, hi - lo);
        });
}

void
reluInPlace(Tensor &y)
{
    float *py = y.data();
    elementwise(
        y.numel(),
        [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
                py[i] = py[i] > 0.0f ? py[i] : 0.0f;
        },
        [&](std::int64_t lo, std::int64_t hi) {
            simd::reluRange(py + lo, hi - lo);
        });
}

void
leakyReluBackwardInPlace(Tensor &dy, const Tensor &x, float slope)
{
    checkThat(dy.numel() == x.numel(), "leakyReluBackward: size mismatch");
    float *pd = dy.data();
    const float *px = x.data();
    elementwise(
        dy.numel(),
        [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
                pd[i] *= px[i] > 0.0f ? 1.0f : slope;
        },
        [&](std::int64_t lo, std::int64_t hi) {
            simd::leakyReluBackwardRange(pd + lo, px + lo, slope,
                                         hi - lo);
        });
}

void
rowDot(const Tensor &a, const Tensor &b, Tensor &out)
{
    checkThat(a.ndim() == 2 && b.ndim() == 2 && out.ndim() == 1,
              "rowDot: bad ranks");
    checkThat(a.dim(0) == b.dim(0) && a.dim(1) == b.dim(1) &&
                  out.dim(0) == a.dim(0),
              "rowDot: shape mismatch");
    const std::int64_t cols = a.dim(1);
    auto run = [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
            const float *pa = a.data() + i * cols;
            const float *pb = b.data() + i * cols;
            float acc = 0.0f;
            for (std::int64_t j = 0; j < cols; ++j)
                acc += pa[j] * pb[j];
            out.data()[i] = acc;
        }
    };
    if (util::seedKernelMode()) {
        run(0, a.dim(0));
        return;
    }
    // A dot product is a reduction: vectorizing it re-associates the
    // sum and changes the bits, so the lane-partial kernel is only
    // reachable in HECTOR_SIMD=fast (documented tolerance, enforced
    // in tests and the roofline bench). Default mode keeps the seed's
    // left-to-right order.
    if (simd::fastModeActive()) {
        util::globalPool().parallelFor(
            0, a.dim(0),
            [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i)
                    out.data()[i] = simd::dotFast(a.data() + i * cols,
                                                  b.data() + i * cols,
                                                  cols);
            },
            std::max<std::int64_t>(
                16, 8192 / std::max<std::int64_t>(1, cols)));
        return;
    }
    util::globalPool().parallelFor(
        0, a.dim(0), run,
        std::max<std::int64_t>(16,
                               8192 / std::max<std::int64_t>(1, cols)));
}

void
rowAxpy(const Tensor &alpha, const Tensor &x, Tensor &y)
{
    checkThat(alpha.ndim() == 1 && x.ndim() == 2 && y.ndim() == 2,
              "rowAxpy: bad ranks");
    checkThat(alpha.dim(0) == x.dim(0) && x.shape() == y.shape(),
              "rowAxpy: shape mismatch");
    const std::int64_t cols = x.dim(1);
    if (util::seedKernelMode()) {
        for (std::int64_t i = 0; i < x.dim(0); ++i) {
            const float a = alpha.data()[i];
            const float *px = x.data() + i * cols;
            float *py = y.data() + i * cols;
            for (std::int64_t j = 0; j < cols; ++j)
                py[j] += a * px[j];
        }
        return;
    }
    // Per-element axpy: one mul + one add rounding per element at any
    // lane width, bit-identical to the seed loop.
    util::globalPool().parallelFor(
        0, x.dim(0),
        [&](std::int64_t lo, std::int64_t hi) {
            for (std::int64_t i = lo; i < hi; ++i)
                simd::axpyRange(y.data() + i * cols, alpha.data()[i],
                                x.data() + i * cols, cols);
        },
        std::max<std::int64_t>(16,
                               8192 / std::max<std::int64_t>(1, cols)));
}

double
sum(const Tensor &t)
{
    // A single deterministic left-to-right reduction: parallelizing
    // this would change the addition order and therefore the bits.
    double acc = 0.0;
    const float *p = t.data();
    for (std::size_t i = 0; i < t.numel(); ++i)
        acc += p[i];
    return acc;
}

} // namespace hector::tensor
