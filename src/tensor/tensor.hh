/**
 * @file
 * Minimal dense f32 tensor used throughout the Hector reproduction.
 *
 * The tensor is row-major, up to three-dimensional, and owns its
 * storage through a shared handle so views/copies are cheap and
 * exception safe. All storage registers with the thread's
 * MemoryTracker, which is how the simulated-device memory experiments
 * (Fig. 10, OOM columns) observe the footprint of every strategy.
 */

#ifndef HECTOR_TENSOR_TENSOR_HH
#define HECTOR_TENSOR_TENSOR_HH

#include <cassert>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "tensor/memory_tracker.hh"

namespace hector::tensor
{

/** Generic invariant-violation error for the tensor library. */
class TensorError : public std::runtime_error
{
  public:
    explicit TensorError(const std::string &what) : std::runtime_error(what)
    {}
};

/** Throwing check used across the library (user-facing errors). */
inline void
checkThat(bool cond, const std::string &msg)
{
    if (!cond)
        throw TensorError(msg);
}

/**
 * Reference-counted flat storage that reports its size to the
 * current MemoryTracker for device-footprint accounting.
 */
class Storage
{
  public:
    explicit Storage(std::size_t numel) : tracker_(currentTracker())
    {
        if (tracker_)
            tracker_->onAlloc(numel * sizeof(float));
        data_.assign(numel, 0.0f);
    }

    ~Storage()
    {
        if (tracker_)
            tracker_->onFree(data_.size() * sizeof(float));
    }

    Storage(const Storage &) = delete;
    Storage &operator=(const Storage &) = delete;

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::size_t size() const { return data_.size(); }

  private:
    MemoryTracker *tracker_;
    std::vector<float> data_;
};

/**
 * Dense row-major float tensor, rank 0 to 3.
 *
 * Copying a Tensor shares storage (like a framework tensor); use
 * clone() for a deep copy. Shape is immutable after construction
 * except through reshape(), which shares storage.
 */
class Tensor
{
  public:
    /** An empty (rank-0, zero-element) tensor. */
    Tensor() = default;

    /** Allocates a zero-initialized tensor of the given shape. */
    explicit Tensor(std::vector<std::int64_t> shape) : shape_(std::move(shape))
    {
        std::size_t n = 1;
        for (std::int64_t d : shape_) {
            checkThat(d >= 0, "negative dimension");
            n *= static_cast<std::size_t>(d);
        }
        storage_ = std::make_shared<Storage>(n);
    }

    static Tensor
    zeros(std::vector<std::int64_t> shape)
    {
        return Tensor(std::move(shape));
    }

    static Tensor
    full(std::vector<std::int64_t> shape, float value)
    {
        Tensor t(std::move(shape));
        float *p = t.data();
        for (std::size_t i = 0; i < t.numel(); ++i)
            p[i] = value;
        return t;
    }

    /** Uniform(-bound, bound) initialization with a caller-owned RNG. */
    static Tensor
    uniform(std::vector<std::int64_t> shape, std::mt19937_64 &rng,
            float bound = 0.1f)
    {
        Tensor t(std::move(shape));
        std::uniform_real_distribution<float> dist(-bound, bound);
        float *p = t.data();
        for (std::size_t i = 0; i < t.numel(); ++i)
            p[i] = dist(rng);
        return t;
    }

    bool defined() const { return storage_ != nullptr; }
    int ndim() const { return static_cast<int>(shape_.size()); }
    const std::vector<std::int64_t> &shape() const { return shape_; }

    std::int64_t
    dim(int i) const
    {
        checkThat(i >= 0 && i < ndim(), "dim index out of range");
        return shape_[static_cast<std::size_t>(i)];
    }

    std::size_t
    numel() const
    {
        if (!storage_)
            return 0;
        // Shape-derived so a view over a larger arena buffer (see
        // viewPrefix) reports its logical element count, not the
        // backing capacity. For ordinarily constructed tensors the two
        // are identical.
        std::size_t n = 1;
        for (std::int64_t d : shape_)
            n *= static_cast<std::size_t>(d);
        return n;
    }

    /** Elements the backing storage can hold (>= numel for views). */
    std::size_t
    capacity() const
    {
        return storage_ ? storage_->size() : 0;
    }

    std::size_t bytes() const { return numel() * sizeof(float); }

    float *data() { return storage_ ? storage_->data() : nullptr; }
    const float *data() const { return storage_ ? storage_->data() : nullptr; }

    float &
    at(std::int64_t i)
    {
        assert(ndim() == 1);
        return data()[i];
    }

    float
    at(std::int64_t i) const
    {
        assert(ndim() == 1);
        return data()[i];
    }

    float &
    at(std::int64_t i, std::int64_t j)
    {
        assert(ndim() == 2);
        return data()[i * shape_[1] + j];
    }

    float
    at(std::int64_t i, std::int64_t j) const
    {
        assert(ndim() == 2);
        return data()[i * shape_[1] + j];
    }

    float &
    at(std::int64_t i, std::int64_t j, std::int64_t k)
    {
        assert(ndim() == 3);
        return data()[(i * shape_[1] + j) * shape_[2] + k];
    }

    float
    at(std::int64_t i, std::int64_t j, std::int64_t k) const
    {
        assert(ndim() == 3);
        return data()[(i * shape_[1] + j) * shape_[2] + k];
    }

    /** Pointer to row i of a rank-2 tensor (or slice i of rank 3). */
    float *
    row(std::int64_t i)
    {
        assert(ndim() >= 2);
        std::int64_t stride = 1;
        for (int d = 1; d < ndim(); ++d)
            stride *= shape_[static_cast<std::size_t>(d)];
        return data() + i * stride;
    }

    const float *
    row(std::int64_t i) const
    {
        return const_cast<Tensor *>(this)->row(i);
    }

    /** Deep copy with fresh (tracked) storage. */
    Tensor
    clone() const
    {
        Tensor t(shape_);
        const float *src = data();
        float *dst = t.data();
        for (std::size_t i = 0; i < numel(); ++i)
            dst[i] = src[i];
        return t;
    }

    /** Shares storage under a new shape with identical element count. */
    Tensor
    reshape(std::vector<std::int64_t> shape) const
    {
        std::size_t n = 1;
        for (std::int64_t d : shape)
            n *= static_cast<std::size_t>(d);
        checkThat(n == numel(), "reshape changes element count");
        Tensor t;
        t.storage_ = storage_;
        t.shape_ = std::move(shape);
        return t;
    }

    /**
     * Shares the first product(shape) elements of this tensor's
     * storage under a new shape. Unlike reshape(), the view may be
     * *smaller* than the backing storage — this is how the executor's
     * arena hands out per-request tensors from pooled high-water
     * buffers without reallocating.
     */
    Tensor
    viewPrefix(std::vector<std::int64_t> shape) const
    {
        std::size_t n = 1;
        for (std::int64_t d : shape) {
            checkThat(d >= 0, "viewPrefix: negative dimension");
            n *= static_cast<std::size_t>(d);
        }
        checkThat(storage_ != nullptr && n <= storage_->size(),
                  "viewPrefix exceeds storage capacity");
        Tensor t;
        t.storage_ = storage_;
        t.shape_ = std::move(shape);
        return t;
    }

    void
    fill(float value)
    {
        float *p = data();
        for (std::size_t i = 0; i < numel(); ++i)
            p[i] = value;
    }

  private:
    std::shared_ptr<Storage> storage_;
    std::vector<std::int64_t> shape_;
};

/** Max-abs difference between two same-shaped tensors. */
float maxAbsDiff(const Tensor &a, const Tensor &b);

/** True when shapes match and every element differs by <= tol. */
bool allClose(const Tensor &a, const Tensor &b, float tol = 1e-4f);

/**
 * FNV-1a fingerprint over the tensor's shape and byte representation.
 * Operating on bytes (not float values) makes every representational
 * change visible: a sign flip, a one-ulp step, even +0 -> -0 changes
 * the checksum, which is what the serving layer's redundant-execution
 * fault detection compares. Deterministic across runs and thread
 * counts (the data itself is, by the bit-identity invariant).
 */
std::uint64_t checksum(const Tensor &t);

/** checksum() folded over a batch of tensors, order-sensitive. */
std::uint64_t checksum(const std::vector<Tensor> &ts);

} // namespace hector::tensor

#endif // HECTOR_TENSOR_TENSOR_HH
