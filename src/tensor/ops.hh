/**
 * @file
 * Host math routines over Tensor.
 *
 * These are the reference kernels of the reproduction: both the
 * Hector-generated kernel interpreter and the baseline systems call
 * into them, so every execution strategy computes identical numbers
 * and differs only in how many launches, bytes, and FLOPs the
 * simulated device is charged for.
 */

#ifndef HECTOR_TENSOR_OPS_HH
#define HECTOR_TENSOR_OPS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hh"

namespace hector::tensor
{

/**
 * General matrix multiply: Y = alpha * op(X) * op(W) + beta * Y.
 *
 * @param x      [m, k] (or [k, m] when trans_x)
 * @param w      [k, n] (or [n, k] when trans_w)
 * @param y      [m, n] accumulator, must be preallocated
 */
void gemm(const Tensor &x, const Tensor &w, Tensor &y, bool trans_x = false,
          bool trans_w = false, float alpha = 1.0f, float beta = 0.0f);

/**
 * Batched matrix multiply: Y[b] = X[b] * W[b] for every batch index.
 * Shapes: x [B, m, k], w [B, k, n], y [B, m, n].
 */
void bmm(const Tensor &x, const Tensor &w, Tensor &y);

/**
 * Segment matrix multiply (the paper's segment MM): rows of @p x are
 * grouped into contiguous per-type segments given by @p seg_ptr
 * (size T+1); segment t is multiplied by weight slice w[t].
 *
 * @param x       [rows, k], rows presorted by type
 * @param w       [T, k, n]
 * @param y       [rows, n]
 * @param seg_ptr per-type row offsets, seg_ptr[T] == rows
 */
void segmentMm(const Tensor &x, const Tensor &w, Tensor &y,
               std::span<const std::int64_t> seg_ptr);

/**
 * Gathered segment matrix multiply: like segmentMm but row r of the
 * virtual input is x[gather[r]], and row r of the virtual output is
 * y[scatter[r]] (identity when the span is empty). This is the
 * CPU-reference semantics of Hector's GEMM-template instances with
 * GATHER/SCATTER access schemes applied on the fly.
 *
 * @param accumulate when true, += into y (used with scatter lists that
 *                   may collide, e.g. backward edge-gradient GEMMs)
 */
void gatherSegmentMm(const Tensor &x, const Tensor &w, Tensor &y,
                     std::span<const std::int64_t> seg_ptr,
                     std::span<const std::int64_t> gather,
                     std::span<const std::int64_t> scatter,
                     bool accumulate = false, bool trans_w = false);

/**
 * Per-segment accumulation of outer products: dW[t] += sum over rows r
 * in segment t of op(x[g(r)])^T * y[s(r)]. Used for weight gradients.
 */
void segmentOuterProduct(const Tensor &x, const Tensor &y, Tensor &dw,
                         std::span<const std::int64_t> seg_ptr,
                         std::span<const std::int64_t> gather_x,
                         std::span<const std::int64_t> gather_y);

/** y[i] = x[gather[i]] row-wise; y must be [|gather|, cols]. */
void gatherRows(const Tensor &x, Tensor &y,
                std::span<const std::int64_t> gather);

/** y[scatter[i]] += x[i] row-wise. */
void scatterAddRows(const Tensor &x, Tensor &y,
                    std::span<const std::int64_t> scatter);

/// @name Elementwise operations (in place unless noted).
/// @{
void addInPlace(Tensor &y, const Tensor &x);
void mulInPlace(Tensor &y, const Tensor &x);
void scaleInPlace(Tensor &y, float alpha);
void expInPlace(Tensor &y);
void leakyReluInPlace(Tensor &y, float slope = 0.01f);
void reluInPlace(Tensor &y);
/** dy *= 1[x > 0] + slope * 1[x <= 0]  (backward of leaky ReLU). */
void leakyReluBackwardInPlace(Tensor &dy, const Tensor &x,
                              float slope = 0.01f);
/// @}

/** out[i] = dot(a.row(i), b.row(i)); out is rank-1 [rows]. */
void rowDot(const Tensor &a, const Tensor &b, Tensor &out);

/** y.row(i) += alpha[i] * x.row(i). */
void rowAxpy(const Tensor &alpha, const Tensor &x, Tensor &y);

/** Sum of all elements. */
double sum(const Tensor &t);

} // namespace hector::tensor

#endif // HECTOR_TENSOR_OPS_HH
