#include "tensor/simd.hh"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define HECTOR_SIMD_X86 1
#endif
#if defined(__aarch64__) || defined(__ARM_NEON)
#include <arm_neon.h>
#define HECTOR_SIMD_NEON 1
#endif

namespace hector::tensor::simd
{

namespace
{

// ------------------------------------------------------- scalar reference
//
// The portable fallback IS the bitwise reference: every vector path
// below computes the same per-element mul/add sequence, so these
// loops double as the SimdMode::Off kernels.

void
rowPanelScalar(float *y, const float *xrow, std::int64_t xstride,
               float scale, const float *panel, std::int64_t kb,
               std::int64_t n)
{
    for (std::int64_t kk = 0; kk < kb; ++kk) {
        const float xv = scale * xrow[kk * xstride];
        if (xv == 0.0f)
            continue;
        const float *prow = panel + kk * n;
        for (std::int64_t j = 0; j < n; ++j)
            y[j] += xv * prow[j];
    }
}

void
axpyScalar(float *y, float a, const float *x, std::int64_t n)
{
    for (std::int64_t j = 0; j < n; ++j)
        y[j] += a * x[j];
}

void
addScalar(float *y, const float *x, std::int64_t n)
{
    for (std::int64_t j = 0; j < n; ++j)
        y[j] += x[j];
}

void
mulScalar(float *y, const float *x, std::int64_t n)
{
    for (std::int64_t j = 0; j < n; ++j)
        y[j] *= x[j];
}

void
scaleScalar(float *y, float a, std::int64_t n)
{
    for (std::int64_t j = 0; j < n; ++j)
        y[j] *= a;
}

void
reluScalar(float *y, std::int64_t n)
{
    for (std::int64_t j = 0; j < n; ++j)
        y[j] = y[j] > 0.0f ? y[j] : 0.0f;
}

void
leakyReluScalar(float *y, float slope, std::int64_t n)
{
    for (std::int64_t j = 0; j < n; ++j)
        y[j] = y[j] > 0.0f ? y[j] : slope * y[j];
}

void
leakyReluBackwardScalar(float *dy, const float *x, float slope,
                        std::int64_t n)
{
    for (std::int64_t j = 0; j < n; ++j)
        dy[j] *= x[j] > 0.0f ? 1.0f : slope;
}

float
dotScalar(const float *a, const float *b, std::int64_t n)
{
    float acc = 0.0f;
    for (std::int64_t j = 0; j < n; ++j)
        acc += a[j] * b[j];
    return acc;
}

// --------------------------------------------------------------- AVX2
//
// Compiled with target("avx2") function attributes so the translation
// unit itself stays buildable at the baseline -march (the dispatcher
// only ever calls these after __builtin_cpu_supports("avx2")).
// Explicit _mm256_mul_ps + _mm256_add_ps — never an FMA — keeps each
// element's rounding sequence identical to the scalar loop.

#if defined(HECTOR_SIMD_X86) && defined(__GNUC__)
#define HECTOR_HAVE_AVX2_DISPATCH 1

__attribute__((target("avx2"))) void
rowPanelAvx2(float *y, const float *xrow, std::int64_t xstride,
             float scale, const float *panel, std::int64_t kb,
             std::int64_t n)
{
    for (std::int64_t kk = 0; kk < kb; ++kk) {
        const float xv = scale * xrow[kk * xstride];
        if (xv == 0.0f)
            continue;
        const float *prow = panel + kk * n;
        const __m256 vx = _mm256_set1_ps(xv);
        std::int64_t j = 0;
        for (; j + 8 <= n; j += 8) {
            const __m256 p = _mm256_loadu_ps(prow + j);
            const __m256 acc = _mm256_loadu_ps(y + j);
            _mm256_storeu_ps(y + j,
                             _mm256_add_ps(acc, _mm256_mul_ps(vx, p)));
        }
        for (; j < n; ++j)
            y[j] += xv * prow[j];
    }
}

__attribute__((target("avx2"))) void
axpyAvx2(float *y, float a, const float *x, std::int64_t n)
{
    const __m256 va = _mm256_set1_ps(a);
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 vx = _mm256_loadu_ps(x + j);
        const __m256 vy = _mm256_loadu_ps(y + j);
        _mm256_storeu_ps(y + j, _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
    }
    for (; j < n; ++j)
        y[j] += a * x[j];
}

__attribute__((target("avx2"))) void
addAvx2(float *y, const float *x, std::int64_t n)
{
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(y + j, _mm256_add_ps(_mm256_loadu_ps(y + j),
                                              _mm256_loadu_ps(x + j)));
    for (; j < n; ++j)
        y[j] += x[j];
}

__attribute__((target("avx2"))) void
mulAvx2(float *y, const float *x, std::int64_t n)
{
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(y + j, _mm256_mul_ps(_mm256_loadu_ps(y + j),
                                              _mm256_loadu_ps(x + j)));
    for (; j < n; ++j)
        y[j] *= x[j];
}

__attribute__((target("avx2"))) void
scaleAvx2(float *y, float a, std::int64_t n)
{
    const __m256 va = _mm256_set1_ps(a);
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(y + j, _mm256_mul_ps(_mm256_loadu_ps(y + j), va));
    for (; j < n; ++j)
        y[j] *= a;
}

__attribute__((target("avx2"))) void
reluAvx2(float *y, std::int64_t n)
{
    // blend on (y > 0), exactly the scalar ternary: keeps -0.0 and NaN
    // handling identical to the reference.
    const __m256 zero = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 vy = _mm256_loadu_ps(y + j);
        const __m256 keep = _mm256_cmp_ps(vy, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(y + j, _mm256_blendv_ps(zero, vy, keep));
    }
    for (; j < n; ++j)
        y[j] = y[j] > 0.0f ? y[j] : 0.0f;
}

__attribute__((target("avx2"))) void
leakyReluAvx2(float *y, float slope, std::int64_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    const __m256 vs = _mm256_set1_ps(slope);
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 vy = _mm256_loadu_ps(y + j);
        const __m256 keep = _mm256_cmp_ps(vy, zero, _CMP_GT_OQ);
        _mm256_storeu_ps(
            y + j, _mm256_blendv_ps(_mm256_mul_ps(vs, vy), vy, keep));
    }
    for (; j < n; ++j)
        y[j] = y[j] > 0.0f ? y[j] : slope * y[j];
}

__attribute__((target("avx2"))) void
leakyReluBackwardAvx2(float *dy, const float *x, float slope,
                      std::int64_t n)
{
    const __m256 zero = _mm256_setzero_ps();
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 vs = _mm256_set1_ps(slope);
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 vx = _mm256_loadu_ps(x + j);
        const __m256 keep = _mm256_cmp_ps(vx, zero, _CMP_GT_OQ);
        const __m256 g = _mm256_blendv_ps(vs, one, keep);
        _mm256_storeu_ps(dy + j,
                         _mm256_mul_ps(_mm256_loadu_ps(dy + j), g));
    }
    for (; j < n; ++j)
        dy[j] *= x[j] > 0.0f ? 1.0f : slope;
}

__attribute__((target("avx2"))) float
dotAvx2(const float *a, const float *b, std::int64_t n)
{
    __m256 acc = _mm256_setzero_ps();
    std::int64_t j = 0;
    for (; j + 8 <= n; j += 8)
        acc = _mm256_add_ps(
            acc, _mm256_mul_ps(_mm256_loadu_ps(a + j),
                               _mm256_loadu_ps(b + j)));
    // Horizontal reduce in a fixed lane order so the fast dot is at
    // least deterministic, if not bit-equal to the scalar order.
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, acc);
    float r = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
              ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (; j < n; ++j)
        r += a[j] * b[j];
    return r;
}

bool
avx2Supported()
{
    __builtin_cpu_init();
    return __builtin_cpu_supports("avx2");
}

#endif // HECTOR_HAVE_AVX2_DISPATCH

// --------------------------------------------------------------- NEON
//
// NEON is baseline on aarch64, so no target attribute or cpuid check
// is needed. vmulq + vaddq (not vfmaq) keeps the scalar rounding.

#if defined(HECTOR_SIMD_NEON)

void
rowPanelNeon(float *y, const float *xrow, std::int64_t xstride,
             float scale, const float *panel, std::int64_t kb,
             std::int64_t n)
{
    for (std::int64_t kk = 0; kk < kb; ++kk) {
        const float xv = scale * xrow[kk * xstride];
        if (xv == 0.0f)
            continue;
        const float *prow = panel + kk * n;
        const float32x4_t vx = vdupq_n_f32(xv);
        std::int64_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const float32x4_t p = vld1q_f32(prow + j);
            const float32x4_t acc = vld1q_f32(y + j);
            vst1q_f32(y + j, vaddq_f32(acc, vmulq_f32(vx, p)));
        }
        for (; j < n; ++j)
            y[j] += xv * prow[j];
    }
}

void
axpyNeon(float *y, float a, const float *x, std::int64_t n)
{
    const float32x4_t va = vdupq_n_f32(a);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const float32x4_t vx = vld1q_f32(x + j);
        const float32x4_t vy = vld1q_f32(y + j);
        vst1q_f32(y + j, vaddq_f32(vy, vmulq_f32(va, vx)));
    }
    for (; j < n; ++j)
        y[j] += a * x[j];
}

void
addNeon(float *y, const float *x, std::int64_t n)
{
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4)
        vst1q_f32(y + j, vaddq_f32(vld1q_f32(y + j), vld1q_f32(x + j)));
    for (; j < n; ++j)
        y[j] += x[j];
}

void
mulNeon(float *y, const float *x, std::int64_t n)
{
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4)
        vst1q_f32(y + j, vmulq_f32(vld1q_f32(y + j), vld1q_f32(x + j)));
    for (; j < n; ++j)
        y[j] *= x[j];
}

void
scaleNeon(float *y, float a, std::int64_t n)
{
    const float32x4_t va = vdupq_n_f32(a);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4)
        vst1q_f32(y + j, vmulq_f32(vld1q_f32(y + j), va));
    for (; j < n; ++j)
        y[j] *= a;
}

float
dotNeon(const float *a, const float *b, std::int64_t n)
{
    float32x4_t acc = vdupq_n_f32(0.0f);
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4)
        acc = vaddq_f32(acc,
                        vmulq_f32(vld1q_f32(a + j), vld1q_f32(b + j)));
    float lanes[4];
    vst1q_f32(lanes, acc);
    float r = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (; j < n; ++j)
        r += a[j] * b[j];
    return r;
}

#endif // HECTOR_SIMD_NEON

// ----------------------------------------------------------- dispatch

struct KernelTable
{
    void (*rowPanel)(float *, const float *, std::int64_t, float,
                     const float *, std::int64_t, std::int64_t);
    void (*axpy)(float *, float, const float *, std::int64_t);
    void (*add)(float *, const float *, std::int64_t);
    void (*mul)(float *, const float *, std::int64_t);
    void (*scale)(float *, float, std::int64_t);
    void (*relu)(float *, std::int64_t);
    void (*leakyRelu)(float *, float, std::int64_t);
    void (*leakyReluBackward)(float *, const float *, float, std::int64_t);
    float (*dot)(const float *, const float *, std::int64_t);
    const char *isa;
    int lanes;
};

constexpr KernelTable kScalarTable = {
    rowPanelScalar,   axpyScalar,  addScalar,
    mulScalar,        scaleScalar, reluScalar,
    leakyReluScalar,  leakyReluBackwardScalar,
    dotScalar,        "portable",  1,
};

/** Best ISA the running CPU offers, resolved once. */
const KernelTable &
bestTable()
{
    static const KernelTable table = []() {
#if defined(HECTOR_HAVE_AVX2_DISPATCH)
        if (avx2Supported()) {
            KernelTable t = kScalarTable;
            t.rowPanel = rowPanelAvx2;
            t.axpy = axpyAvx2;
            t.add = addAvx2;
            t.mul = mulAvx2;
            t.scale = scaleAvx2;
            t.relu = reluAvx2;
            t.leakyRelu = leakyReluAvx2;
            t.leakyReluBackward = leakyReluBackwardAvx2;
            t.dot = dotAvx2;
            t.isa = "avx2";
            t.lanes = 8;
            return t;
        }
#endif
#if defined(HECTOR_SIMD_NEON)
        {
            KernelTable t = kScalarTable;
            t.rowPanel = rowPanelNeon;
            t.axpy = axpyNeon;
            t.add = addNeon;
            t.mul = mulNeon;
            t.scale = scaleNeon;
            t.dot = dotNeon;
            t.isa = "neon";
            t.lanes = 4;
            return t;
        }
#endif
        return kScalarTable;
    }();
    return table;
}

std::atomic<int> mode_override{-1};

SimdMode
envMode()
{
    static const SimdMode cached =
        parseSimdEnv(std::getenv("HECTOR_SIMD"));
    return cached;
}

const KernelTable &
active()
{
    return simdMode() == SimdMode::Off ? kScalarTable : bestTable();
}

} // namespace

SimdMode
parseSimdEnv(const char *value)
{
    if (!value || *value == '\0')
        return SimdMode::On;
    const std::string v(value);
    if (v == "off")
        return SimdMode::Off;
    if (v == "on")
        return SimdMode::On;
    if (v == "fast")
        return SimdMode::Fast;
    throw std::invalid_argument(
        std::string("HECTOR_SIMD: invalid mode '") + value +
        "' (expected one of 'off', 'on', 'fast')");
}

SimdMode
simdMode()
{
    const int o = mode_override.load(std::memory_order_relaxed);
    if (o >= 0)
        return static_cast<SimdMode>(o);
    return envMode();
}

void
setSimdMode(SimdMode mode)
{
    mode_override.store(static_cast<int>(mode),
                        std::memory_order_relaxed);
}

const char *
isaName()
{
    return active().isa;
}

int
vectorWidth()
{
    return active().lanes;
}

bool
fastModeActive()
{
    return simdMode() == SimdMode::Fast;
}

void
rowPanel(float *y, const float *xrow, std::int64_t xstride, float scale,
         const float *panel, std::int64_t kb, std::int64_t n)
{
    active().rowPanel(y, xrow, xstride, scale, panel, kb, n);
}

void
rowPanelWith(int vec_width, float *y, const float *xrow,
             std::int64_t xstride, float scale, const float *panel,
             std::int64_t kb, std::int64_t n)
{
    // 1 forces the scalar reference; any other width runs the
    // dispatched kernel (which is the widest the CPU offers — asking
    // for 4 on an 8-lane machine still computes identical bits, so
    // the tuner's sweep is a pure timing experiment).
    if (vec_width == 1)
        rowPanelScalar(y, xrow, xstride, scale, panel, kb, n);
    else
        active().rowPanel(y, xrow, xstride, scale, panel, kb, n);
}

void
axpyRange(float *y, float a, const float *x, std::int64_t n)
{
    active().axpy(y, a, x, n);
}

void
addRange(float *y, const float *x, std::int64_t n)
{
    active().add(y, x, n);
}

void
mulRange(float *y, const float *x, std::int64_t n)
{
    active().mul(y, x, n);
}

void
scaleRange(float *y, float a, std::int64_t n)
{
    active().scale(y, a, n);
}

void
reluRange(float *y, std::int64_t n)
{
    active().relu(y, n);
}

void
leakyReluRange(float *y, float slope, std::int64_t n)
{
    active().leakyRelu(y, slope, n);
}

void
leakyReluBackwardRange(float *dy, const float *x, float slope,
                       std::int64_t n)
{
    active().leakyReluBackward(dy, x, slope, n);
}

float
dotFast(const float *a, const float *b, std::int64_t n)
{
    return active().dot(a, b, n);
}

} // namespace hector::tensor::simd
