#include "tensor/memory_tracker.hh"

namespace hector::tensor
{

namespace
{
thread_local MemoryTracker *tls_tracker = nullptr;
} // namespace

MemoryTracker *
currentTracker()
{
    return tls_tracker;
}

TrackerScope::TrackerScope(MemoryTracker *tracker) : prev_(tls_tracker)
{
    tls_tracker = tracker;
}

TrackerScope::~TrackerScope()
{
    tls_tracker = prev_;
}

} // namespace hector::tensor
