#include "tensor/tensor.hh"

#include <cmath>

namespace hector::tensor
{

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    checkThat(a.shape() == b.shape(), "maxAbsDiff: shape mismatch");
    float worst = 0.0f;
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < a.numel(); ++i)
        worst = std::max(worst, std::fabs(pa[i] - pb[i]));
    return worst;
}

bool
allClose(const Tensor &a, const Tensor &b, float tol)
{
    if (a.shape() != b.shape())
        return false;
    return maxAbsDiff(a, b) <= tol;
}

} // namespace hector::tensor
