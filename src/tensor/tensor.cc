#include "tensor/tensor.hh"

#include <cmath>
#include <cstring>

namespace hector::tensor
{

namespace
{

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

std::uint64_t
fnv1a(std::uint64_t h, const unsigned char *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

} // namespace

float
maxAbsDiff(const Tensor &a, const Tensor &b)
{
    checkThat(a.shape() == b.shape(), "maxAbsDiff: shape mismatch");
    float worst = 0.0f;
    const float *pa = a.data();
    const float *pb = b.data();
    for (std::size_t i = 0; i < a.numel(); ++i)
        worst = std::max(worst, std::fabs(pa[i] - pb[i]));
    return worst;
}

bool
allClose(const Tensor &a, const Tensor &b, float tol)
{
    if (a.shape() != b.shape())
        return false;
    return maxAbsDiff(a, b) <= tol;
}

std::uint64_t
checksum(const Tensor &t)
{
    std::uint64_t h = kFnvOffset;
    for (std::int64_t d : t.shape()) {
        unsigned char dim[sizeof(d)];
        std::memcpy(dim, &d, sizeof(d));
        h = fnv1a(h, dim, sizeof(d));
    }
    return fnv1a(h, reinterpret_cast<const unsigned char *>(t.data()),
                 t.numel() * sizeof(float));
}

std::uint64_t
checksum(const std::vector<Tensor> &ts)
{
    std::uint64_t h = kFnvOffset;
    for (const Tensor &t : ts) {
        const std::uint64_t c = checksum(t);
        unsigned char bytes[sizeof(c)];
        std::memcpy(bytes, &c, sizeof(c));
        h = fnv1a(h, bytes, sizeof(c));
    }
    return h;
}

} // namespace hector::tensor
